"""The solver execution layer: one place where window solves happen.

:class:`SolveExecutor` sits between the search algorithms of
:mod:`repro.core` and the solver backends of :mod:`repro.ilp`.  Every
``FormModel + SolveModel`` step of the paper's procedures goes through
:meth:`SolveExecutor.solve_window`, which layers, in order:

1. **incremental model preparation** — one
   :class:`repro.core.formulation.ModelTemplate` per
   ``(graph, processor, N, options)`` is built, compiled to sparse
   standard form and fingerprinted *once*; every window solve then
   instantiates it by patching the two latency-row right-hand sides
   (disable with ``settings.reuse_templates=False`` to rebuild the ILP
   from expressions each iteration, the pre-template behavior),
2. **memoization** — the model is fingerprinted (a tuple composition on
   the template path — no hashing) and the
   :class:`repro.solve.cache.SolveCache` consulted before any backend
   runs (exact replays and window-monotone verdict reuse),
3. **deadline policy** — the per-solve budget is the minimum of the
   settings' ``time_limit`` and whatever remains of the search's overall
   deadline; an already-expired deadline skips the backends entirely,
4. **portfolio execution** — the configured backends race in worker
   threads (:func:`repro.solve.portfolio.race_backends`); the first
   conclusive verdict wins and cooperative backends are cancelled,
5. **graceful degradation** — when every backend exhausts its budget,
   the greedy level-packing heuristics are tried as a last resort and
   the outcome is marked ``degraded=True`` instead of raising or
   silently reporting infeasibility,
6. **telemetry** — every step is recorded in a
   :class:`repro.solve.telemetry.RunTelemetry` shared across the run.

One executor instance is created per ``Refine_Partitions_Bound`` run (or
handed in by the caller to share the cache across runs).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.analyzer import ANALYZE_MODES
from repro.ilp.status import SolveStatus
from repro.obs.metrics import as_metrics
from repro.obs.tracer import as_tracer
from repro.solve.cache import SolveCache, SolveCacheProtocol, TieredSolveCache
from repro.solve.fingerprint import ModelFingerprint, fingerprint_model
from repro.solve.portfolio import AttemptFn, SolveAttempt, race_backends
from repro.solve.telemetry import RunTelemetry, SolveStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.arch.processor import ReconfigurableProcessor
    from repro.core.formulation import FormulationOptions, ModelTemplate
    from repro.core.reduce_latency import SolverSettings
    from repro.core.solution import PartitionedDesign
    from repro.taskgraph.graph import TaskGraph

__all__ = ["WindowOutcome", "SolveExecutor", "KNOWN_BACKENDS"]

#: Backends the executor knows how to drive.  ``highs`` and ``bnb`` are
#: ILP backends solving the built model; ``cp`` is the problem-specific
#: backtracker, raced at the graph level.
KNOWN_BACKENDS = ("highs", "bnb", "cp")

#: Greedy fallback policies, tried in this order (feasibility-friendly
#: first).
_FALLBACK_POLICIES = ("min_area", "balanced", "min_latency", "max_area")


@dataclass(frozen=True)
class WindowOutcome:
    """Verdict of one window solve, however it was produced."""

    design: "PartitionedDesign | None"
    achieved: float | None          # total latency incl. overhead
    status: SolveStatus
    backend: str                    # winner, "cache", or "heuristic:<p>"
    wall_time: float
    iterations: int = 0
    cache_hit: bool = False
    degraded: bool = False

    @property
    def feasible(self) -> bool:
        return self.design is not None


class SolveExecutor:
    """Executes window solves with caching, racing, deadlines, telemetry."""

    def __init__(
        self,
        settings: "SolverSettings | None" = None,
        cache: SolveCacheProtocol | None = None,
        telemetry: RunTelemetry | None = None,
        metrics=None,
    ) -> None:
        if settings is None:
            from repro.core.reduce_latency import SolverSettings

            settings = SolverSettings()
        self.settings = settings
        #: The run's tracer (``settings.tracer`` or the no-op
        #: :data:`repro.obs.NULL_TRACER`).  Search drivers trace through
        #: this attribute so a shared executor keeps one span tree.
        self.tracer = as_tracer(getattr(settings, "tracer", None))
        #: The run's metrics registry (explicit argument wins over
        #: ``settings.metrics``; the no-op :data:`repro.obs.NULL_METRICS`
        #: when neither is set).  Shard workers pass their own registry
        #: here because settings never carry one across the wire.
        self.metrics = as_metrics(
            metrics if metrics is not None
            else getattr(settings, "metrics", None)
        )
        self._register_metrics()
        use_cache = getattr(settings, "enable_cache", True)
        if cache is not None:
            self.cache = cache
        elif not use_cache:
            self.cache = None
        else:
            cache_path = getattr(settings, "cache_path", None)
            if cache_path:
                from repro.solve.disk_cache import DiskSolveCache

                self.cache = TieredSolveCache(
                    SolveCache(metrics=self.metrics),
                    DiskSolveCache(cache_path, metrics=self.metrics),
                )
            else:
                self.cache = SolveCache(metrics=self.metrics)
        self.telemetry = telemetry if telemetry is not None else RunTelemetry()
        self.reuse_templates = bool(
            getattr(settings, "reuse_templates", True)
        )
        self.analyze_mode = str(getattr(settings, "analyze", "off") or "off")
        if self.analyze_mode not in ANALYZE_MODES:
            raise ValueError(
                f"unknown analyze mode {self.analyze_mode!r}; "
                f"known: {ANALYZE_MODES}"
            )
        # Templates keyed by object identity of graph/processor (plus N
        # and the *effective* options).  The template itself holds strong
        # references to both objects, so a live entry's ids cannot be
        # recycled.
        self._templates: dict[
            tuple[int, int, int, "FormulationOptions"], "ModelTemplate"
        ] = {}
        # Cross-window acceleration state (see docs/solving.md).  The
        # incumbent map holds the best feasible design seen per
        # (graph, processor, options); the processor is pinned in the
        # value (and the graph via the design) so the id-based key can
        # never be recycled under a live entry.
        self.incumbent_reuse = bool(
            getattr(settings, "incumbent_reuse", False)
        )
        self.primal_first = bool(getattr(settings, "primal_first", False))
        self.reuse_basis = bool(getattr(settings, "reuse_basis", False))
        self.persistent_cuts = bool(
            getattr(settings, "persistent_cuts", False)
        )
        self._incumbents: dict[
            tuple[int, int, "FormulationOptions"],
            tuple["PartitionedDesign", float, "ReconfigurableProcessor"],
        ] = {}
        #: Root-LP bases keyed by base fingerprint; shape-checked (and
        #: cold-started on mismatch) by the simplex basis crash.
        self._bases: dict[str, np.ndarray] = {}
        #: Packing bounds per (graph, processor, N); the value pins both
        #: objects so the id-based key can never be recycled live.
        self._packing_bounds: dict[
            tuple[int, int, int],
            tuple["TaskGraph", "ReconfigurableProcessor", float],
        ] = {}
        self._validate_backends()

    def _register_metrics(self) -> None:
        """Pre-resolve the executor's metric families (see
        docs/observability.md for the catalog); with :data:`NULL_METRICS`
        every family is the shared no-op object."""
        m = self.metrics
        self._m_windows = m.counter(
            "repro_window_solves_total",
            "Window solves concluded, by producing backend and status.",
            ("backend", "status"),
        )
        self._m_window_seconds = m.histogram(
            "repro_window_solve_seconds",
            "End-to-end wall time of one window solve.",
        )
        self._m_primal_hits = m.counter(
            "repro_primal_hits_total",
            "Windows answered by the primal-first pipeline, by stage.",
            ("stage",),
        )
        self._m_incumbent_reuses = m.counter(
            "repro_incumbent_reuses_total",
            "Windows answered by re-validating the carried incumbent.",
        )
        self._m_cuts_pooled = m.counter(
            "repro_cuts_pooled_total",
            "Cover cuts added to the persistent template pools.",
        )
        self._m_cut_pool_size = m.gauge(
            "repro_cut_pool_size",
            "Cover cuts pooled on the most recently separated template.",
        )
        self._m_template_builds = m.counter(
            "repro_template_builds_total",
            "Model templates built (one per graph/N/options structure).",
        )
        self._m_backend_timeouts = m.counter(
            "repro_backend_timeouts_total",
            "Backend attempts that exhausted their budget in a race "
            "nobody won.",
            ("backend",),
        )

    def _validate_backends(self) -> None:
        for name in self.backends:
            if name not in KNOWN_BACKENDS:
                raise ValueError(
                    f"unknown solve backend {name!r}; "
                    f"known: {KNOWN_BACKENDS}"
                )

    @property
    def backends(self) -> tuple[str, ...]:
        """The backends a window solve will run (portfolio or solo)."""
        portfolio = getattr(self.settings, "portfolio", None)
        if portfolio:
            return tuple(portfolio)
        return (self.settings.backend,)

    # -- model preparation ---------------------------------------------------

    def _effective_options(self, options) -> "FormulationOptions":
        """The formulation options a window solve actually builds with.

        Centralized so the template cache, the fresh-build path and the
        fingerprints all see the same options object: with
        ``guide_with_objective`` the latency objective is attached here,
        once, rather than ad hoc at each call site.
        """
        from dataclasses import replace as _replace

        from repro.core.formulation import FormulationOptions

        options = options or FormulationOptions()
        if self.settings.guide_with_objective and not options.minimize_latency:
            options = _replace(options, minimize_latency=True)
        if (
            getattr(self.settings, "symmetry_breaking", False)
            and not options.symmetry_breaking
        ):
            options = _replace(options, symmetry_breaking=True)
        return options

    def template_for(
        self,
        graph: "TaskGraph",
        processor: "ReconfigurableProcessor",
        num_partitions: int,
        options: "FormulationOptions | None" = None,
    ) -> "ModelTemplate":
        """The shared :class:`ModelTemplate` for one model structure.

        Built (and compiled, and fingerprinted) on first use, then
        reused by every window solve of the same
        ``(graph, processor, N, options)`` — across all iterations of a
        ``Reduce_Latency`` bisection and across the partition bounds of
        ``Refine_Partitions_Bound`` that revisit a structure.
        """
        from repro.core.formulation import ModelTemplate

        options = self._effective_options(options)
        key = (id(graph), id(processor), num_partitions, options)
        template = self._templates.get(key)
        if template is None:
            with self.tracer.span(
                "template_build", num_partitions=num_partitions
            ):
                template = ModelTemplate(
                    graph, processor, num_partitions, options,
                    tracer=self.tracer,
                )
            self._templates[key] = template
            self.telemetry.template_builds += 1
            self._m_template_builds.inc()
        return template

    # -- the one entry point -------------------------------------------------

    def solve_window(
        self,
        graph: "TaskGraph",
        processor: "ReconfigurableProcessor",
        num_partitions: int,
        d_max: float,
        d_min: float,
        options: "FormulationOptions | None" = None,
        deadline: float | None = None,
    ) -> WindowOutcome:
        """Answer "is there a design in ``[d_min, d_max]`` at ``N``?".

        ``deadline`` is an absolute ``time.perf_counter()`` stamp (the
        search's overall budget); the per-backend budget is clipped to
        whatever remains of it.

        Model preparation is incremental by default: the window is
        instantiated from the shared :class:`ModelTemplate` (two RHS
        patches on the pre-compiled sparse form) instead of rebuilding
        the ILP from expressions.  Both paths produce array-identical
        compiled models; ``settings.reuse_templates=False`` selects the
        fresh-build path (the benchmark's baseline).

        With ``settings.incumbent_reuse`` every feasible verdict —
        whoever produced it — is remembered per ``(graph, processor,
        options)`` and offered to the next window, first as a zero-work
        feasibility certificate, then as a validated MILP warm start.
        """
        outcome = self._solve_window(
            graph, processor, num_partitions, d_max, d_min, options,
            deadline,
        )
        if self.incumbent_reuse and outcome.design is not None:
            key = (
                id(graph), id(processor), self._effective_options(options),
            )
            held = self._incumbents.get(key)
            if held is None or (
                outcome.achieved is not None and outcome.achieved < held[1]
            ):
                self._incumbents[key] = (
                    outcome.design,
                    float(outcome.achieved),
                    processor,
                )
        return outcome

    def _solve_window(
        self,
        graph: "TaskGraph",
        processor: "ReconfigurableProcessor",
        num_partitions: int,
        d_max: float,
        d_min: float,
        options: "FormulationOptions | None" = None,
        deadline: float | None = None,
    ) -> WindowOutcome:
        from repro.core.formulation import build_model

        start = time.perf_counter()
        tracer = self.tracer
        with tracer.span(
            "solve_window",
            num_partitions=num_partitions,
            d_min=float(d_min),
            d_max=float(d_max),
        ):
            options = self._effective_options(options)
            template = None
            if self.reuse_templates:
                template = self.template_for(
                    graph, processor, num_partitions, options
                )
                with tracer.span("template_instantiate"):
                    tp_model = template.instantiate(
                        d_min, d_max,
                        include_pool_cuts=self.persistent_cuts,
                    )
                self.telemetry.template_instantiations += 1
            else:
                with tracer.span(
                    "build_model", num_partitions=num_partitions
                ):
                    tp_model = build_model(
                        graph, processor, num_partitions, d_max, d_min,
                        options,
                    )

            if self.analyze_mode != "off":
                self._analyze(tp_model)

            fp: ModelFingerprint | None = None
            if self.cache is not None:
                fp = fingerprint_model(tp_model)
                hit = self.cache.lookup(fp, graph=graph)
                if hit is not None:
                    tier = getattr(hit, "tier", "memory")
                    if tier == "disk":
                        self.telemetry.disk_hits += 1
                    tracer.event(
                        "cache_hit",
                        rule=hit.rule,
                        tier=tier,
                        feasible=hit.verdict.feasible,
                    )
                    return self._from_cache(
                        hit, num_partitions, d_min, d_max, start
                    )
                tracer.event("cache_miss")

            # Incumbent carry-over: check the previous feasible design
            # against this window's rows before any backend runs.
            warm_values = None
            if self.incumbent_reuse:
                reused, warm_values = self._try_incumbent(
                    tp_model, graph, processor, num_partitions,
                    d_min, d_max, fp, start,
                )
                if reused is not None:
                    return reused

            budget = self._remaining_budget(deadline)
            if budget is not None and budget <= 0.0:
                # The overall deadline is already spent: degrade
                # immediately.
                tracer.event("deadline_expired", phase="pre_solve")
                return self._degrade(
                    graph, processor, num_partitions, d_max, d_min,
                    options, fp, start, timed_out=True,
                )

            # Primal-first stage: LP relaxation + rounding/diving under a
            # small budget; the paper's procedure only needs feasibility.
            if self.primal_first and tp_model.compiled is not None:
                probe_start = time.perf_counter()
                probed = self._primal_probe(
                    tp_model, template, graph, processor, options,
                    num_partitions, d_min, d_max, fp, budget, start,
                )
                if probed is not None:
                    return probed
                if budget is not None:
                    budget -= time.perf_counter() - probe_start
                    if budget <= 0.0:
                        tracer.event(
                            "deadline_expired", phase="post_primal"
                        )
                        return self._degrade(
                            graph, processor, num_partitions, d_max, d_min,
                            options, fp, start, timed_out=True,
                        )

            start_basis = None
            if self.reuse_basis and fp is not None:
                start_basis = self._bases.get(fp.base)

            attempts = self._build_attempts(
                tp_model, graph, processor, num_partitions, d_max, options,
                budget, warm_values=warm_values, start_basis=start_basis,
            )
            winner, completed = race_backends(
                attempts, tracer=tracer, metrics=self.metrics
            )
            for attempt in completed:
                self.telemetry.add_backend_wall(
                    attempt.backend, attempt.wall_time
                )
                self.telemetry.basis_restarts += int(
                    attempt.stats.get("basis_restarts", 0) or 0
                )
                # Count budget exhaustion only when the race as a whole
                # was inconclusive — a loser cancelled mid-race also
                # reports TIME_LIMIT, but nothing actually timed out then.
                if winner is None and attempt.status in (
                    SolveStatus.TIME_LIMIT,
                    SolveStatus.NODE_LIMIT,
                ):
                    self.telemetry.timeouts += 1
                    self._m_backend_timeouts.labels(attempt.backend).inc()
                    tracer.event(
                        "backend_timeout",
                        backend=attempt.backend,
                        status=attempt.status.value,
                        wall_time=attempt.wall_time,
                    )
                elif winner is not None and attempt is winner:
                    tracer.event(
                        "backend_win",
                        backend=attempt.backend,
                        status=attempt.status.value,
                        wall_time=attempt.wall_time,
                        contenders=len(attempts),
                    )
                else:
                    tracer.event(
                        "backend_loss",
                        backend=attempt.backend,
                        status=attempt.status.value,
                        wall_time=attempt.wall_time,
                        cancelled=attempt.status
                        in (SolveStatus.TIME_LIMIT, SolveStatus.NODE_LIMIT),
                    )

            if self.reuse_basis and winner is not None and fp is not None:
                root_basis = winner.stats.get("root_basis")
                if root_basis is not None:
                    self._bases[fp.base] = np.asarray(
                        root_basis, dtype=np.intp
                    )

            if winner is not None and winner.design is not None:
                achieved = winner.design.total_latency(processor)
                if fp is not None:
                    self.cache.store_feasible(
                        fp, winner.design, achieved, backend=winner.backend
                    )
                return self._conclude(
                    winner.design, achieved, winner.status, winner.backend,
                    num_partitions, d_min, d_max, start,
                    iterations=winner.iterations,
                )
            if winner is not None:  # proven INFEASIBLE (or UNBOUNDED)
                if fp is not None and winner.status is SolveStatus.INFEASIBLE:
                    self.cache.store_infeasible(fp, backend=winner.backend)
                return self._conclude(
                    None, None, winner.status, winner.backend,
                    num_partitions, d_min, d_max, start,
                    iterations=winner.iterations,
                )

            # Every backend ran out of budget (or crashed): degrade.
            return self._degrade(
                graph, processor, num_partitions, d_max, d_min,
                options, fp, start, timed_out=True,
            )

    # -- pre-solve analysis --------------------------------------------------

    #: Per-pass cap on ``analyzer_diagnostic`` tracer events; the full
    #: report is still counted in telemetry and summarized on the span.
    _MAX_DIAGNOSTIC_EVENTS = 20

    def _analyze(self, tp_model) -> None:
        """Run the pre-solve analyzer on the prepared window model.

        ``"warn"`` records the findings (tracer span + events, telemetry
        counters) and continues; ``"strict"`` raises
        :class:`repro.analysis.ModelAnalysisError` on ERROR-severity
        findings *before any backend attempt* so a malformed model never
        costs a portfolio race.
        """
        from repro.analysis import ModelAnalysisError, analyze_model

        with self.tracer.span("model_analyze", mode=self.analyze_mode) as sp:
            report = analyze_model(tp_model)
            num_errors = len(report.errors)
            num_warnings = len(report.warnings)
            sp.annotate(errors=num_errors, warnings=num_warnings)
            self.telemetry.record_analysis(num_errors, num_warnings)
            for diag in report.diagnostics[: self._MAX_DIAGNOSTIC_EVENTS]:
                sp.event(
                    "analyzer_diagnostic",
                    code=diag.code,
                    severity=diag.severity.value,
                    paper_eq=diag.paper_eq,
                    message=diag.message,
                )
            if len(report.diagnostics) > self._MAX_DIAGNOSTIC_EVENTS:
                sp.event(
                    "analyzer_diagnostics_truncated",
                    emitted=self._MAX_DIAGNOSTIC_EVENTS,
                    total=len(report.diagnostics),
                )
        if self.analyze_mode == "strict" and not report.ok:
            raise ModelAnalysisError(report)

    # -- outcome assembly ----------------------------------------------------

    def _conclude(
        self,
        design,
        achieved,
        status: SolveStatus,
        backend: str,
        num_partitions: int,
        d_min: float,
        d_max: float,
        start: float,
        iterations: int = 0,
        cache_hit: bool = False,
        degraded: bool = False,
    ) -> WindowOutcome:
        wall = time.perf_counter() - start
        self._m_windows.labels(backend or "none", status.value).inc()
        self._m_window_seconds.observe(wall)
        outcome = WindowOutcome(
            design=design,
            achieved=achieved,
            status=status,
            backend=backend,
            wall_time=wall,
            iterations=iterations,
            cache_hit=cache_hit,
            degraded=degraded,
        )
        span = self.tracer.current_span()
        if span is not None:
            span.annotate(
                backend=backend,
                status=status.value,
                cache_hit=cache_hit,
                degraded=degraded,
                feasible=design is not None,
            )
        self.tracer.event(
            "window_verdict",
            num_partitions=num_partitions,
            d_min=d_min,
            d_max=d_max,
            feasible=design is not None,
            achieved=achieved,
            backend=backend,
            status=status.value,
            cache_hit=cache_hit,
            degraded=degraded,
        )
        self.telemetry.record(
            SolveStats(
                num_partitions=num_partitions,
                d_min=d_min,
                d_max=d_max,
                backend=backend,
                status=status.value,
                wall_time=wall,
                iterations=iterations,
                cache_hit=cache_hit,
                degraded=degraded,
            )
        )
        return outcome

    def _from_cache(
        self, hit, num_partitions: int, d_min: float, d_max: float, start: float
    ) -> WindowOutcome:
        verdict = hit.verdict
        if verdict.feasible:
            return self._conclude(
                verdict.design, verdict.achieved, SolveStatus.FEASIBLE,
                "cache", num_partitions, d_min, d_max, start, cache_hit=True,
            )
        return self._conclude(
            None, None, SolveStatus.INFEASIBLE,
            "cache", num_partitions, d_min, d_max, start, cache_hit=True,
        )

    # -- cross-window acceleration -------------------------------------------

    @staticmethod
    def _vectorize(compiled, values: dict) -> "np.ndarray | None":
        """Order a name -> value mapping into the compiled column order.

        Returns ``None`` when any compiled variable is missing from the
        mapping — a partial point is no feasibility certificate.
        """
        x = np.empty(compiled.num_vars)
        for name, j in compiled.var_index.items():
            value = values.get(name)
            if value is None:
                return None
            x[j] = value
        return x

    def _try_incumbent(
        self,
        tp_model,
        graph,
        processor,
        num_partitions: int,
        d_min: float,
        d_max: float,
        fp: ModelFingerprint | None,
        start: float,
    ) -> tuple[WindowOutcome | None, dict | None]:
        """Check the carried incumbent against this window's rows.

        Returns ``(outcome, warm_values)``: a concluded outcome when the
        incumbent is still feasible (one sparse matrix-vector product,
        zero solver work), else the lifted variable assignment to offer
        the backends as a validated warm start (or ``None`` if there is
        no usable incumbent).
        """
        from repro.core.formulation import warm_values_from_design

        key = (id(graph), id(processor), tp_model.options)
        held = self._incumbents.get(key)
        if held is None:
            return None, None
        design, achieved, _processor = held
        if design.num_partitions_used > num_partitions:
            return None, None
        with self.tracer.span("incumbent_check", achieved=achieved) as sp:
            values = warm_values_from_design(tp_model, design)
            compiled = tp_model.compiled
            if compiled is None:
                sp.annotate(result="no_compiled_form")
                return None, values
            x = self._vectorize(compiled, values)
            if x is None:
                sp.annotate(result="incomplete_point")
                return None, None
            if not compiled.point_feasible(x):
                sp.annotate(result="stale")
                return None, values
            sp.annotate(result="reused")
        self.telemetry.incumbent_reuses += 1
        self._m_incumbent_reuses.inc()
        self.tracer.event(
            "incumbent_reuse", achieved=achieved,
            num_partitions=num_partitions,
        )
        if fp is not None:
            self.cache.store_feasible(
                fp, design, achieved, backend="incumbent"
            )
        return (
            self._conclude(
                design, achieved, SolveStatus.FEASIBLE, "incumbent",
                num_partitions, d_min, d_max, start,
            ),
            None,
        )

    def _primal_probe(
        self,
        tp_model,
        template,
        graph,
        processor,
        options,
        num_partitions: int,
        d_min: float,
        d_max: float,
        fp: ModelFingerprint | None,
        budget: float | None,
        start: float,
    ) -> WindowOutcome | None:
        """Bound check, LP relaxation + primal heuristics, pre-race.

        Four conclusive exits, all sound for the base (cut-free) model:

        * the packing bound (:func:`repro.core.bounds.packing_min_latency`)
          exceeds ``d_max`` — pure arithmetic proves the window empty
          before even the LP is touched.  This is the exit that answers
          the deep windows of area-tight instances, where the LP
          relaxation is trivially feasible and the MILP refutation is
          out of reach at any practical budget.
        * LP INFEASIBLE — the relaxation is a superset of the integer
          points (and pool cuts are valid inequalities), so the window
          is *provably* empty: cached and concluded like any backend's
          infeasibility proof.
        * ``round_nearest`` or ``dive`` lands an integer-feasible point
          — a genuine design, decoded and audited like a backend win.
        * A greedy level-packing design that audits clean, uses at most
          ``N`` partitions and fits under ``d_max`` — the same
          certificate argument as the degrade path, but *before* any
          backend burns its budget (and without the ``degraded`` mark:
          a valid design is a valid design, whoever found it).
        * Anything else (LP timeout, no primal point) returns ``None``
          and the portfolio runs as usual, minus the spent budget.

        While the LP point is available, cover cuts are separated from
        the template's window-independent resource rows into the
        persistent pool (``settings.persistent_cuts``).
        """
        from repro.ilp.rounding import dive, round_nearest
        from repro.ilp.scipy_backend import solve_relaxation
        from repro.ilp.status import Solution

        packing = self._packing_bound(graph, processor, num_partitions)
        if packing > d_max + 1e-9:
            self.tracer.event(
                "packing_bound_refutes_window",
                bound=packing, d_max=d_max,
            )
            self.telemetry.primal_hits += 1
            self._m_primal_hits.labels("bound").inc()
            if fp is not None:
                self.cache.store_infeasible(fp, backend="primal:bound")
            return self._conclude(
                None, None, SolveStatus.INFEASIBLE, "primal:bound",
                num_partitions, d_min, d_max, start,
            )

        form = tp_model.compiled
        probe_limit = None
        if budget is not None:
            # Keep the probe a sliver of the window budget: its job is
            # the cheap certificates, and every second it burns is a
            # second the portfolio race loses on the hard windows.
            probe_limit = max(0.2, min(2.0, 0.1 * budget))
        with self.tracer.span("primal_probe") as sp:
            status, x, _objective, _n = solve_relaxation(
                form, time_limit=probe_limit
            )
            if status is SolveStatus.INFEASIBLE:
                sp.annotate(result="lp_infeasible")
                self.telemetry.primal_hits += 1
                self._m_primal_hits.labels("lp").inc()
                if fp is not None:
                    self.cache.store_infeasible(fp, backend="primal:lp")
                return self._conclude(
                    None, None, SolveStatus.INFEASIBLE, "primal:lp",
                    num_partitions, d_min, d_max, start,
                )
            if status is not SolveStatus.OPTIMAL or x is None:
                sp.annotate(result="lp_inconclusive", status=status.value)
                return None

            if self.persistent_cuts and template is not None:
                from repro.ilp.cuts import find_cover_cuts

                is_binary = (
                    form.is_integral & (form.lb >= 0.0) & (form.ub <= 1.0)
                )
                cuts = find_cover_cuts(
                    form.a_ub, form.b_ub, is_binary, x,
                    rows=template.resource_row_indices,
                    family=template.cover_cut_family or "resource",
                )
                added = template.add_pool_cuts(cuts) if cuts else 0
                if added:
                    self.telemetry.pooled_cuts += added
                    self._m_cuts_pooled.inc(added)
                    self._m_cut_pool_size.set(template.pooled_cuts)
                    sp.event(
                        "cuts_pooled", added=added,
                        pool=template.pooled_cuts,
                    )

            candidate = round_nearest(form, x)
            label = "primal:round"
            if candidate is None:
                # Cheap structural heuristic before LP diving: the greedy
                # level packers are window-independent, so they can hit
                # only while ``d_max`` is above their fixed latency —
                # typically the wide opening window of each bisection,
                # which is also the most expensive one to race.
                greedy = self._greedy_probe(
                    graph, processor, options, num_partitions,
                    d_min, d_max, fp, start, sp,
                )
                if greedy is not None:
                    return greedy
            if candidate is None:
                label = "primal:dive"
                probe_deadline = (
                    time.perf_counter() + probe_limit
                    if probe_limit is not None
                    else None
                )

                def solve_node(lb, ub):
                    if (
                        probe_deadline is not None
                        and time.perf_counter() > probe_deadline
                    ):
                        return SolveStatus.TIME_LIMIT, None, math.nan
                    remaining = None
                    if probe_deadline is not None:
                        remaining = max(
                            probe_deadline - time.perf_counter(), 1e-3
                        )
                    node_status, node_x, node_obj, _ = solve_relaxation(
                        form, extra_lb=lb, extra_ub=ub,
                        time_limit=remaining,
                    )
                    return node_status, node_x, node_obj

                resolves = int(
                    getattr(self.settings, "extra", {}).get(
                        "primal_dive_resolves", 8
                    )
                )
                dived = dive(
                    form, x,
                    form.lb.astype(float), form.ub.astype(float),
                    solve_node, max_resolves=resolves,
                )
                candidate = dived[0] if dived is not None else None
            if candidate is None:
                sp.annotate(result="no_primal_point")
                return None

            solution = Solution(
                status=SolveStatus.FEASIBLE,
                objective=form.objective_at(candidate),
                values=form.values_to_dict(candidate),
            )
            design = tp_model.design_from(solution)
            achieved = design.total_latency(processor)
            sp.annotate(result="hit", label=label, achieved=achieved)
        self.telemetry.primal_hits += 1
        self._m_primal_hits.labels(label.split(":", 1)[1]).inc()
        if fp is not None:
            self.cache.store_feasible(fp, design, achieved, backend=label)
        return self._conclude(
            design, achieved, SolveStatus.FEASIBLE, label,
            num_partitions, d_min, d_max, start,
        )

    def _packing_bound(
        self, graph, processor, num_partitions: int
    ) -> float:
        """Memoized :func:`repro.core.bounds.packing_min_latency`."""
        from repro.core.bounds import packing_min_latency

        key = (id(graph), id(processor), num_partitions)
        held = self._packing_bounds.get(key)
        if held is None:
            held = (
                graph,
                processor,
                packing_min_latency(graph, processor, num_partitions),
            )
            self._packing_bounds[key] = held
        return held[2]

    def _greedy_probe(
        self,
        graph,
        processor,
        options,
        num_partitions: int,
        d_min: float,
        d_max: float,
        fp: ModelFingerprint | None,
        start: float,
        sp,
    ) -> WindowOutcome | None:
        """Try the greedy level packers as a primal certificate.

        Same acceptance rules as the degrade path (at most ``N``
        partitions, clean audit, latency under ``d_max``; the window's
        lower edge excludes no true design), but run up front as part of
        the primal-first stage, so a hit costs microseconds instead of a
        full backend race.  Returns ``None`` when no policy qualifies.
        """
        from repro.core.heuristics import greedy_partition

        for policy in _FALLBACK_POLICIES:
            result = greedy_partition(
                graph, processor, policy,
                include_env_memory=options.include_env_memory,
            )
            design = result.design
            if design.num_partitions_used > num_partitions:
                continue
            achieved = design.total_latency(processor)
            if achieved > d_max + 1e-9:
                continue
            if design.audit(processor, options.include_env_memory):
                continue
            label = f"primal:greedy:{policy}"
            sp.annotate(result="hit", label=label, achieved=achieved)
            self.telemetry.primal_hits += 1
            self._m_primal_hits.labels("greedy").inc()
            if fp is not None:
                self.cache.store_feasible(fp, design, achieved, backend=label)
            return self._conclude(
                design, achieved, SolveStatus.FEASIBLE, label,
                num_partitions, d_min, d_max, start,
            )
        return None

    def _degrade(
        self,
        graph,
        processor,
        num_partitions: int,
        d_max: float,
        d_min: float,
        options,
        fp: ModelFingerprint | None,
        start: float,
        timed_out: bool,
    ) -> WindowOutcome:
        """Last resort: greedy level-packing instead of an exception.

        A greedy design is a genuine feasibility certificate when it uses
        at most ``N`` partitions, meets every architectural constraint
        and fits under ``d_max`` (a latency *below* ``d_min`` is accepted
        — the window's lower edge only steers the bisection bookkeeping
        and excludes no true design).
        """
        if getattr(self.settings, "heuristic_fallback", True):
            from repro.core.heuristics import greedy_partition

            with self.tracer.span(
                "heuristic_fallback", num_partitions=num_partitions
            ) as sp:
                for policy in _FALLBACK_POLICIES:
                    result = greedy_partition(
                        graph,
                        processor,
                        policy,
                        include_env_memory=options.include_env_memory,
                    )
                    design = result.design
                    if design.num_partitions_used > num_partitions:
                        sp.event("fallback_rejected", policy=policy,
                                 reason="too_many_partitions")
                        continue
                    achieved = design.total_latency(processor)
                    if achieved > d_max + 1e-9:
                        sp.event("fallback_rejected", policy=policy,
                                 reason="over_latency", achieved=achieved)
                        continue
                    if design.audit(processor, options.include_env_memory):
                        sp.event("fallback_rejected", policy=policy,
                                 reason="audit_failed")
                        continue
                    sp.annotate(policy=policy, achieved=achieved)
                    if fp is not None:
                        self.cache.store_feasible(
                            fp, design, achieved,
                            backend=f"heuristic:{policy}",
                        )
                    return self._conclude(
                        design, achieved, SolveStatus.FEASIBLE,
                        f"heuristic:{policy}", num_partitions, d_min, d_max,
                        start, degraded=True,
                    )
                sp.annotate(policy=None, exhausted=True)
        status = SolveStatus.TIME_LIMIT if timed_out else SolveStatus.ERROR
        return self._conclude(
            None, None, status, "", num_partitions, d_min, d_max, start,
            degraded=True,
        )

    # -- backend dispatch ----------------------------------------------------

    def _remaining_budget(self, deadline: float | None) -> float | None:
        limit = self.settings.time_limit
        if deadline is None:
            return limit
        remaining = deadline - time.perf_counter()
        if limit is None:
            return remaining
        return min(limit, remaining)

    def _build_attempts(
        self,
        tp_model,
        graph,
        processor,
        num_partitions: int,
        d_max: float,
        options,
        time_limit: float | None,
        warm_values: dict | None = None,
        start_basis: "np.ndarray | None" = None,
    ) -> list[tuple[str, AttemptFn]]:
        attempts: list[tuple[str, AttemptFn]] = []
        for name in self.backends:
            if name == "cp":
                attempts.append(
                    (
                        name,
                        self._cp_attempt(
                            graph, processor, num_partitions, d_max,
                            options, time_limit,
                        ),
                    )
                )
            else:
                attempts.append(
                    (
                        name,
                        self._ilp_attempt(
                            tp_model, name, time_limit,
                            warm_values=warm_values,
                            start_basis=start_basis,
                        ),
                    )
                )
        return attempts

    def _ilp_attempt(
        self,
        tp_model,
        backend: str,
        time_limit,
        warm_values: dict | None = None,
        start_basis: "np.ndarray | None" = None,
    ) -> AttemptFn:
        settings = self.settings
        tracer = self.tracer

        def run(cancel: threading.Event) -> SolveAttempt:
            start = time.perf_counter()
            kwargs = dict(settings.extra)
            if backend == "bnb":
                kwargs.setdefault("should_stop", cancel.is_set)
                if start_basis is not None:
                    kwargs.setdefault("start_basis", start_basis)
            if warm_values is not None:
                # Validated by the backend: bnb installs it as the
                # initial incumbent only after a full bounds/integrality
                # /rows check; highs accepts-and-ignores it (scipy's
                # milp has no MIP-start hook).
                kwargs.setdefault("warm_start", warm_values)
            if tracer.enabled:
                # Only forwarded when tracing is live: test-registered
                # backends need not accept the keyword otherwise.
                kwargs.setdefault("tracer", tracer)
            solution = tp_model.solve(
                backend=backend,
                first_feasible=True,
                time_limit=time_limit,
                node_limit=settings.node_limit,
                **kwargs,
            )
            design = None
            if solution.status.has_solution:
                design = tp_model.design_from(solution)
            return SolveAttempt(
                backend=backend,
                status=solution.status,
                design=design,
                wall_time=time.perf_counter() - start,
                iterations=solution.iterations,
                stats=solution.stats,
            )

        return run

    def _cp_attempt(
        self, graph, processor, num_partitions, d_max, options, time_limit
    ) -> AttemptFn:
        tracer = self.tracer

        def run(cancel: threading.Event) -> SolveAttempt:
            from repro.core.cp_solver import CpStats, cp_solve

            start = time.perf_counter()
            stats = CpStats()
            design = cp_solve(
                graph,
                processor,
                num_partitions,
                d_max,
                include_env_memory=options.include_env_memory,
                time_limit=time_limit,
                stats=stats,
                should_stop=cancel.is_set,
                tracer=tracer if tracer.enabled else None,
            )
            if design is not None:
                status = SolveStatus.FEASIBLE
            elif stats.timed_out:
                status = SolveStatus.TIME_LIMIT
            elif stats.nodes >= 2_000_000:
                status = SolveStatus.NODE_LIMIT
            else:
                # Exhaustive search: a genuine emptiness proof for the
                # (stronger) question "any design with latency <= d_max".
                status = SolveStatus.INFEASIBLE
            return SolveAttempt(
                backend="cp",
                status=status,
                design=design,
                wall_time=time.perf_counter() - start,
                iterations=stats.nodes,
            )

        return run
