"""Persistent cross-process solve cache backed by SQLite.

The in-memory :class:`repro.solve.cache.SolveCache` dies with the
process, so a fleet of partition workers re-solves windows any sibling
(or any previous run) already answered.  :class:`DiskSolveCache` makes
verdicts durable: one SQLite file, keyed by the SHA-256 *windowless*
standard-form fingerprint of :mod:`repro.solve.fingerprint`, storing the
same per-window verdicts the memory cache holds and honoring the same
monotone reuse rules:

``exact``
    The identical window was solved before — replay the stored verdict.
``feasible (monotone)``
    A stored design's total latency lies inside the queried window; the
    design itself is the certificate.
``infeasible (monotone)``
    A stored *proven* emptiness covers the queried window.

Designs are stored as plain ``task -> (partition, design_point_label)``
assignments (JSON), decoded back into
:class:`~repro.core.solution.PartitionedDesign` against the querying
graph — which is safe because equal base fingerprints imply equal task
structure and design-point menus.  A row that fails to decode is treated
as a miss and deleted.

Operational properties (the production-shape requirements):

* **schema versioning** — a ``meta`` table records the schema version;
  opening a file written by an incompatible version drops and recreates
  the tables rather than mis-reading rows;
* **corruption tolerance** — a file SQLite cannot open is moved aside
  (``<name>.corrupt``) and a fresh store is created; a fleet never
  crashes on a torn write;
* **eviction** — the store is capped (``max_entries``); inserts beyond
  the cap evict the least-recently-used rows in batches;
* **cross-process safety** — WAL journaling plus a busy timeout; a
  locked database degrades to a miss / dropped store instead of raising
  mid-solve.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING

from repro.obs.metrics import as_metrics
from repro.solve.cache import CachedVerdict, CacheHit
from repro.solve.fingerprint import ModelFingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.solution import PartitionedDesign
    from repro.taskgraph.graph import TaskGraph

__all__ = ["DiskSolveCache", "SCHEMA_VERSION"]

#: Bump when the table layout or row semantics change; an on-disk store
#: with a different version is dropped and recreated on open.
SCHEMA_VERSION = 1

#: Window-comparison tolerance — identical to the memory tier's.
_EPS = 1e-9

_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS verdicts (
    id         INTEGER PRIMARY KEY,
    base       TEXT    NOT NULL,
    d_min      REAL    NOT NULL,
    d_max      REAL    NOT NULL,
    feasible   INTEGER NOT NULL,
    achieved   REAL,
    assignment TEXT,
    backend    TEXT    NOT NULL DEFAULT '',
    created    REAL    NOT NULL,
    last_used  REAL    NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_verdicts_base ON verdicts(base);
CREATE INDEX IF NOT EXISTS idx_verdicts_lru  ON verdicts(last_used);
"""


class DiskSolveCache:
    """Content-addressed, window-monotone solve cache on disk."""

    def __init__(
        self,
        path: str | Path,
        max_entries: int = 100_000,
        metrics=None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.path = Path(path)
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: The store on disk was unreadable and has been recreated.
        self.recovered = False
        self._lock = threading.Lock()
        registry = as_metrics(metrics)
        self._m_hits = registry.counter(
            "repro_solve_cache_hits_total",
            "Solve-cache lookups answered, by tier and matching rule.",
            ("tier", "rule"),
        )
        self._m_misses = registry.counter(
            "repro_solve_cache_misses_total",
            "Solve-cache lookups nobody answered, by tier.",
            ("tier",),
        )
        self._m_evictions = registry.counter(
            "repro_disk_cache_evictions_total",
            "LRU rows dropped from the persistent solve cache.",
        )
        self._m_recoveries = registry.counter(
            "repro_disk_cache_recoveries_total",
            "Times an unreadable or incompatible store was recreated.",
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = self._open()
        if self.recovered:
            self._m_recoveries.inc()

    # -- lifecycle -----------------------------------------------------------

    def _open(self) -> sqlite3.Connection:
        try:
            return self._connect()
        except sqlite3.DatabaseError:
            # Torn write, truncated file, or not SQLite at all: move the
            # wreck aside (best effort) and start fresh.
            self.recovered = True
            try:
                self.path.replace(self.path.with_suffix(
                    self.path.suffix + ".corrupt"
                ))
            except OSError:
                try:
                    self.path.unlink()
                except OSError:
                    pass
            return self._connect()

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.path, timeout=10.0, check_same_thread=False
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.executescript(_TABLES)
        row = conn.execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        if row is None:
            conn.execute(
                "INSERT INTO meta(key, value) VALUES('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            conn.commit()
        elif row[0] != str(SCHEMA_VERSION):
            # Incompatible layout: recreate rather than mis-read rows.
            self.recovered = True
            conn.executescript(
                "DROP TABLE IF EXISTS verdicts; DROP TABLE IF EXISTS meta;"
            )
            conn.executescript(_TABLES)
            conn.execute(
                "INSERT INTO meta(key, value) VALUES('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            conn.commit()
        return conn

    def close(self) -> None:
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass

    def __enter__(self) -> "DiskSolveCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            try:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM verdicts"
                ).fetchone()
            except sqlite3.Error:
                return 0
        return int(row[0])

    # -- lookup --------------------------------------------------------------

    def lookup(
        self, fp: ModelFingerprint, graph: "TaskGraph | None" = None
    ) -> CacheHit | None:
        """Return a stored verdict valid for ``fp``'s window, or ``None``.

        ``graph`` decodes feasible rows back into designs; without it
        only infeasibility proofs can be served.
        """
        lo, hi = fp.d_min, fp.d_max
        with self._lock:
            try:
                rows = self._conn.execute(
                    "SELECT id, d_min, d_max, feasible, achieved, "
                    "assignment, backend FROM verdicts WHERE base=? "
                    "ORDER BY id",
                    (fp.base,),
                ).fetchall()
            except sqlite3.Error:
                rows = []
        exact = feasible = infeasible = None
        for row in rows:
            _id, r_min, r_max, r_feasible, achieved, _assignment, _b = row
            same_window = (
                abs(r_min - lo) <= _EPS and abs(r_max - hi) <= _EPS
            )
            if same_window and exact is None:
                exact = row
            if (
                r_feasible
                and achieved is not None
                and lo - _EPS <= achieved <= hi + _EPS
                and feasible is None
            ):
                feasible = row
            if (
                not r_feasible
                and r_min <= lo + _EPS
                and hi <= r_max + _EPS
                and infeasible is None
            ):
                infeasible = row
        # Same precedence as the memory tier: exact replays, then
        # feasibility certificates, then emptiness proofs.
        for row, rule in (
            (exact, "exact"), (feasible, "feasible"),
            (infeasible, "infeasible"),
        ):
            if row is None:
                continue
            hit = self._decode(row, rule, graph)
            if hit is not None:
                self.hits += 1
                self._m_hits.labels("disk", rule).inc()
                self._touch(row[0])
                return hit
        self.misses += 1
        self._m_misses.labels("disk").inc()
        return None

    def _decode(
        self, row, rule: str, graph: "TaskGraph | None"
    ) -> CacheHit | None:
        from repro.core.solution import PartitionedDesign

        _id, r_min, r_max, r_feasible, achieved, assignment, backend = row
        design = None
        if r_feasible:
            if graph is None:
                return None
            try:
                labels = json.loads(assignment)
                design = PartitionedDesign.from_labels(
                    graph,
                    {
                        name: (int(partition), str(label))
                        for name, (partition, label) in labels.items()
                    },
                )
            except (ValueError, KeyError, TypeError):
                # Undecodable row (hash collision would be the only
                # honest cause; bit rot the likely one): drop it.
                self._delete(_id)
                return None
        verdict = CachedVerdict(
            d_min=float(r_min),
            d_max=float(r_max),
            feasible=bool(r_feasible),
            achieved=None if achieved is None else float(achieved),
            design=design,
            backend=str(backend),
        )
        return CacheHit(verdict, rule, tier="disk")

    def _touch(self, row_id: int) -> None:
        with self._lock:
            try:
                self._conn.execute(
                    "UPDATE verdicts SET last_used=? WHERE id=?",
                    (time.time(), row_id),
                )
                self._conn.commit()
            except sqlite3.Error:
                pass

    def _delete(self, row_id: int) -> None:
        with self._lock:
            try:
                self._conn.execute(
                    "DELETE FROM verdicts WHERE id=?", (row_id,)
                )
                self._conn.commit()
            except sqlite3.Error:
                pass

    # -- store ---------------------------------------------------------------

    def store_feasible(
        self,
        fp: ModelFingerprint,
        design: "PartitionedDesign",
        achieved: float,
        backend: str = "",
    ) -> None:
        """Persist a feasibility certificate for ``fp``'s window."""
        assignment = json.dumps(design.as_assignment(), sort_keys=True)
        self._insert(
            fp, feasible=True, achieved=float(achieved),
            assignment=assignment, backend=backend,
        )

    def store_infeasible(self, fp: ModelFingerprint, backend: str = "") -> None:
        """Persist a *proven* emptiness verdict for ``fp``'s window.

        Same contract as the memory tier: only call for solves that
        ended with status ``INFEASIBLE``, never for budget exhaustion.
        """
        self._insert(
            fp, feasible=False, achieved=None, assignment=None,
            backend=backend,
        )

    def _insert(
        self,
        fp: ModelFingerprint,
        feasible: bool,
        achieved: float | None,
        assignment: str | None,
        backend: str,
    ) -> None:
        now = time.time()
        with self._lock:
            try:
                dup = self._conn.execute(
                    "SELECT id FROM verdicts WHERE base=? AND feasible=? "
                    "AND ABS(d_min - ?) <= ? AND ABS(d_max - ?) <= ?",
                    (fp.base, int(feasible), fp.d_min, _EPS, fp.d_max, _EPS),
                ).fetchone()
                if dup is not None:
                    return
                self._conn.execute(
                    "INSERT INTO verdicts(base, d_min, d_max, feasible, "
                    "achieved, assignment, backend, created, last_used) "
                    "VALUES(?,?,?,?,?,?,?,?,?)",
                    (
                        fp.base, fp.d_min, fp.d_max, int(feasible),
                        achieved, assignment, backend, now, now,
                    ),
                )
                self._conn.commit()
                self._evict_locked()
            except sqlite3.Error:
                # A locked or failing store never breaks a solve; the
                # verdict simply stays process-local this time.
                pass

    # -- eviction ------------------------------------------------------------

    def _evict_locked(self) -> None:
        """Drop the least-recently-used rows once past ``max_entries``.

        Called with ``self._lock`` held, right after an insert.  Evicts
        in ~10% batches so the (COUNT + DELETE) bookkeeping is amortized
        rather than per-insert at the boundary.
        """
        count = self._conn.execute(
            "SELECT COUNT(*) FROM verdicts"
        ).fetchone()[0]
        if count <= self.max_entries:
            return
        batch = max(count - self.max_entries, self.max_entries // 10, 1)
        self._conn.execute(
            "DELETE FROM verdicts WHERE id IN ("
            "SELECT id FROM verdicts ORDER BY last_used ASC, id ASC "
            "LIMIT ?)",
            (batch,),
        )
        self._conn.commit()
        self.evictions += batch
        self._m_evictions.inc(batch)

    def clear(self) -> None:
        with self._lock:
            try:
                self._conn.execute("DELETE FROM verdicts")
                self._conn.commit()
            except sqlite3.Error:
                pass
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        """JSON-ready operational counters (for telemetry and the CLI)."""
        return {
            "path": str(self.path),
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "recovered": self.recovered,
            "schema_version": SCHEMA_VERSION,
        }
