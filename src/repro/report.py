"""Aligned text-table rendering for experiment reports.

Produces the paper-style tables: one row per search iteration, ``Inf.``
for infeasible solves, thousands separators on latencies, and a caption
carrying the experiment parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["TextTable", "format_value"]


def format_value(value, precision: int = 0) -> str:
    """Render a cell: ``None`` -> ``Inf.``, floats with separators."""
    if value is None:
        return "Inf."
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value):
            return f"{int(value):,}"
        return f"{value:,.{max(precision, 1)}f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


@dataclass
class TextTable:
    """A small, dependency-free aligned table."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence] = field(default_factory=list)
    footer: str = ""

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        cells = [
            [format_value(value) for value in row] for row in self.rows
        ]
        widths = [
            max(
                len(str(header)),
                *(len(row[i]) for row in cells),
            )
            if cells
            else len(str(header))
            for i, header in enumerate(self.columns)
        ]

        def line(parts: Sequence[str]) -> str:
            return "| " + " | ".join(
                part.rjust(widths[i]) for i, part in enumerate(parts)
            ) + " |"

        separator = "|-" + "-|-".join("-" * w for w in widths) + "-|"
        out = [self.title, line([str(c) for c in self.columns]), separator]
        out.extend(line(row) for row in cells)
        if self.footer:
            out.append(self.footer)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()
