"""Operation-level data-flow graphs — the input of the HLS estimator.

The paper's tasks are "sets of operations" synthesized by an in-house
high-level-synthesis estimation tool; a task's design points come from
synthesizing its operations under different functional-unit allocations.
This module provides the operation-level representation plus builders for
the operation patterns the paper's benchmarks use (vector products for
the DCT, filter sections for the AR filter).

Operations carry bit-widths because the paper's tasks "differ in their
bit-widths" — the functional-unit area/delay models in
:mod:`repro.hls.modules` scale with them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = [
    "Operation",
    "Dfg",
    "vector_product_dfg",
    "filter_section_dfg",
    "fir_dfg",
]


@dataclass(frozen=True)
class Operation:
    """One operation: a kind (``"mul"``, ``"add"``, ...) and a bit-width."""

    name: str
    kind: str
    bitwidth: int

    def __post_init__(self) -> None:
        if self.bitwidth < 1:
            raise ValueError(f"operation {self.name!r}: bad bit-width")


class Dfg:
    """A DAG of operations with value dependencies."""

    def __init__(self, name: str = "dfg") -> None:
        self.name = name
        self._ops: dict[str, Operation] = {}
        self._preds: dict[str, list[str]] = {}
        self._succs: dict[str, list[str]] = {}

    def add_op(
        self,
        name: str,
        kind: str,
        bitwidth: int,
        depends_on: Iterable[str] = (),
    ) -> Operation:
        if name in self._ops:
            raise ValueError(f"duplicate operation {name!r}")
        op = Operation(name, kind, bitwidth)
        self._ops[name] = op
        self._preds[name] = []
        self._succs[name] = []
        for dep in depends_on:
            if dep not in self._ops:
                raise ValueError(
                    f"operation {name!r} depends on unknown {dep!r}"
                )
            self._preds[name].append(dep)
            self._succs[dep].append(name)
        return op

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops.values())

    def operation(self, name: str) -> Operation:
        return self._ops[name]

    def predecessors(self, name: str) -> tuple[str, ...]:
        return tuple(self._preds[name])

    def successors(self, name: str) -> tuple[str, ...]:
        return tuple(self._succs[name])

    def kinds(self) -> dict[str, int]:
        """Histogram of operation kinds (drives allocation enumeration)."""
        counts: dict[str, int] = {}
        for op in self:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    def topological_order(self) -> tuple[str, ...]:
        in_degree = {name: len(self._preds[name]) for name in self._ops}
        ready = [name for name, deg in in_degree.items() if deg == 0]
        order: list[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for succ in self._succs[current]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._ops):
            raise ValueError(f"DFG {self.name!r} contains a cycle")
        return tuple(order)

    def __repr__(self) -> str:
        return f"Dfg({self.name!r}, ops={len(self)})"


def vector_product_dfg(
    length: int = 4, data_width: int = 8, accum_width: int = 12
) -> Dfg:
    """Dot product of two ``length``-vectors: muls + adder tree.

    This is the DCT task template: each of the paper's 32 DCT tasks is a
    vector product (Figure 6).
    """
    if length < 1:
        raise ValueError("vector length must be positive")
    dfg = Dfg(f"vprod{length}_w{data_width}")
    products = []
    for i in range(length):
        products.append(
            dfg.add_op(f"mul{i}", "mul", data_width).name
        )
    frontier = products
    level = 0
    while len(frontier) > 1:
        next_frontier = []
        for i in range(0, len(frontier) - 1, 2):
            name = f"add{level}_{i // 2}"
            dfg.add_op(
                name, "add", accum_width,
                depends_on=(frontier[i], frontier[i + 1]),
            )
            next_frontier.append(name)
        if len(frontier) % 2:
            next_frontier.append(frontier[-1])
        frontier = next_frontier
        level += 1
    return dfg


def filter_section_dfg(
    taps: int = 2, data_width: int = 16, label: str = ""
) -> Dfg:
    """A direct-form II-ish filter section: the AR-filter task template.

    ``taps`` multiply-accumulate pairs feeding a final subtract (the
    feedback combination), mirroring the paper's "Task A" structure.
    """
    if taps < 1:
        raise ValueError("need at least one tap")
    dfg = Dfg(label or f"section{taps}_w{data_width}")
    accumulated: str | None = None
    for i in range(taps):
        mul = dfg.add_op(f"mul{i}", "mul", data_width).name
        if accumulated is None:
            accumulated = mul
        else:
            accumulated = dfg.add_op(
                f"acc{i}", "add", data_width, depends_on=(accumulated, mul)
            ).name
    dfg.add_op("fb", "sub", data_width, depends_on=(accumulated,))
    return dfg


def fir_dfg(taps: int = 8, data_width: int = 12) -> Dfg:
    """A ``taps``-tap FIR filter: chain of multiply-accumulates."""
    if taps < 1:
        raise ValueError("need at least one tap")
    dfg = Dfg(f"fir{taps}_w{data_width}")
    accumulated: str | None = None
    for i in range(taps):
        mul = dfg.add_op(f"mul{i}", "mul", data_width).name
        if accumulated is None:
            accumulated = mul
        else:
            accumulated = dfg.add_op(
                f"acc{i}", "add", data_width + 4, depends_on=(accumulated, mul)
            ).name
    return dfg
