"""High-level-synthesis estimation: DFGs -> design points.

Stand-in for the paper's in-house estimation tool.  Pipeline:

``Dfg`` (operations with bit-widths)
-> :func:`enumerate_allocations` (module sets)
-> :func:`list_schedule` (latency per allocation)
-> :func:`estimate_design_points` (area model + Pareto pruning)
-> ``tuple[DesignPoint, ...]`` consumed by :mod:`repro.taskgraph`.
"""

from repro.hls.allocation import Allocation, enumerate_allocations
from repro.hls.dfg import (
    Dfg,
    Operation,
    filter_section_dfg,
    fir_dfg,
    vector_product_dfg,
)
from repro.hls.estimator import (
    EstimatorConfig,
    estimate_design_points,
    estimate_task,
)
from repro.hls.modules import FuLibrary, FuType, default_library
from repro.hls.pareto import prune_design_space, subsample_front
from repro.hls.scheduling import (
    Schedule,
    alap_times,
    asap_times,
    list_schedule,
)

__all__ = [
    "Allocation",
    "Dfg",
    "EstimatorConfig",
    "FuLibrary",
    "FuType",
    "Operation",
    "Schedule",
    "alap_times",
    "asap_times",
    "default_library",
    "enumerate_allocations",
    "estimate_design_points",
    "estimate_task",
    "filter_section_dfg",
    "fir_dfg",
    "list_schedule",
    "prune_design_space",
    "subsample_front",
    "vector_product_dfg",
]
