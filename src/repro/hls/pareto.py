"""Design-space pruning: Pareto filtering plus curve subsampling.

The paper (Section 2): *"If the number of design alternatives for a task
are too many, then exploring the large design space can become too
computationally expensive.  In such cases, 'candidate' design points must
be obtained by effective design space pruning techniques."*

Two stages:

1. drop dominated points (strict Pareto front) —
   :func:`repro.taskgraph.designpoint.pareto_filter`,
2. if the front is still larger than ``max_points``, keep a subsample
   that covers the area-latency curve evenly with both extremes pinned —
   :func:`repro.taskgraph.designpoint.subsample_front` (shared with the
   chain-clustering preprocessor).
"""

from __future__ import annotations

from typing import Iterable

from repro.taskgraph.designpoint import (
    DesignPoint,
    pareto_filter,
    subsample_front,
)

__all__ = ["subsample_front", "prune_design_space"]


def prune_design_space(
    points: Iterable[DesignPoint], max_points: int = 6
) -> list[DesignPoint]:
    """Pareto-filter then subsample down to ``max_points`` candidates."""
    front = pareto_filter(points)
    return subsample_front(front, max_points)
