"""Design-point estimation: DFG -> set of (area, latency) alternatives.

This is the reproduction's stand-in for the paper's high-level-synthesis
estimation tool ([17], [18]): it enumerates functional-unit allocations,
list-schedules the task's DFG on each, adds a register/steering overhead
to the raw functional-unit area, and Pareto-prunes the outcome into the
``M_t`` handed to the partitioner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hls.allocation import Allocation, enumerate_allocations
from repro.hls.dfg import Dfg
from repro.hls.modules import FuLibrary, default_library
from repro.hls.pareto import prune_design_space
from repro.hls.scheduling import list_schedule
from repro.taskgraph.designpoint import DesignPoint, ModuleSet

__all__ = ["EstimatorConfig", "estimate_design_points", "estimate_task"]


@dataclass(frozen=True)
class EstimatorConfig:
    """Estimation parameters.

    ``overhead_per_op`` models registers/multiplexing per operation (CLB
    units); ``max_points`` caps the pruned design-point count per task
    (the paper's "candidate design points").
    """

    max_instances_per_kind: int = 4
    allocation_limit: int = 256
    overhead_per_op: float = 1.0
    max_points: int = 6

    def __post_init__(self) -> None:
        if self.max_points < 1:
            raise ValueError("need at least one design point")


def _area_of(
    dfg: Dfg,
    library: FuLibrary,
    allocation: Allocation,
    overhead_per_op: float,
) -> float:
    """Functional-unit area at the widest bit-width used, plus overhead."""
    width_of_unit: dict[str, int] = {}
    for op in dfg:
        unit_name, _count = allocation.unit_for(op.kind)
        width_of_unit[unit_name] = max(
            width_of_unit.get(unit_name, 0), op.bitwidth
        )
    area = 0.0
    for unit_name, count in allocation.instances().items():
        width = width_of_unit.get(unit_name, 0)
        if width == 0:
            continue  # allocated but unused (merged kinds)
        area += count * library.unit(unit_name).area(width)
    return area + overhead_per_op * len(dfg)


def estimate_design_points(
    dfg: Dfg,
    library: FuLibrary | None = None,
    config: EstimatorConfig | None = None,
) -> tuple[DesignPoint, ...]:
    """Synthesize the design-point set for one task DFG.

    Returns a Pareto-pruned, area-sorted tuple of at most
    ``config.max_points`` points, labeled ``dp1..dpK`` smallest first —
    the convention the paper's tables follow.
    """
    library = library or default_library()
    config = config or EstimatorConfig()
    if len(dfg) == 0:
        raise ValueError("cannot estimate an empty DFG")
    raw: list[DesignPoint] = []
    for allocation in enumerate_allocations(
        dfg,
        library,
        max_instances_per_kind=config.max_instances_per_kind,
        limit=config.allocation_limit,
    ):
        schedule = list_schedule(dfg, library, allocation)
        area = _area_of(dfg, library, allocation, config.overhead_per_op)
        raw.append(
            DesignPoint(
                area=round(area, 1),
                latency=round(schedule.makespan, 1),
                module_set=ModuleSet.from_mapping(allocation.instances()),
            )
        )
    pruned = prune_design_space(raw, max_points=config.max_points)
    return tuple(
        DesignPoint(p.area, p.latency, p.module_set, f"dp{i + 1}")
        for i, p in enumerate(pruned)
    )


def estimate_task(
    graph,
    name: str,
    dfg: Dfg,
    kind: str = "",
    library: FuLibrary | None = None,
    config: EstimatorConfig | None = None,
):
    """Estimate ``dfg`` and add the resulting task to ``graph``.

    Convenience wrapper for building task graphs straight from behavioral
    templates (see ``examples/hls_flow.py``).
    """
    points = estimate_design_points(dfg, library=library, config=config)
    return graph.add_task(name, points, kind=kind)
