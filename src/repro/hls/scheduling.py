"""Operation scheduling: ASAP, ALAP and resource-constrained list scheduling.

The estimator's latency model: given a DFG and a concrete set of
functional-unit instances, schedule operations in continuous time —
an operation starts when all its predecessors have finished *and* an
instance of its assigned unit type is free; it occupies that instance for
the unit's delay at the operation's bit-width.

List scheduling priority is the classic ALAP-derived criticality (least
slack first), which is what the paper-era estimators [18] used.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.hls.allocation import Allocation
from repro.hls.dfg import Dfg
from repro.hls.modules import FuLibrary

__all__ = ["Schedule", "asap_times", "alap_times", "list_schedule"]


@dataclass
class Schedule:
    """A complete schedule: per-op start/finish plus the makespan."""

    start: dict[str, float] = field(default_factory=dict)
    finish: dict[str, float] = field(default_factory=dict)
    unit_of: dict[str, tuple[str, int]] = field(default_factory=dict)
    makespan: float = 0.0

    def is_consistent(self, dfg: Dfg) -> bool:
        """Every op scheduled after its predecessors (audit helper)."""
        for op in dfg:
            for pred in dfg.predecessors(op.name):
                if self.start[op.name] < self.finish[pred] - 1e-9:
                    return False
        return True


def _delay_of(dfg: Dfg, library: FuLibrary, allocation: Allocation):
    """Per-operation delay under the allocation's unit choices."""
    delays: dict[str, float] = {}
    for op in dfg:
        unit_name, _count = allocation.unit_for(op.kind)
        delays[op.name] = library.unit(unit_name).delay(op.bitwidth)
    return delays


def asap_times(
    dfg: Dfg, delays: dict[str, float]
) -> dict[str, float]:
    """Unconstrained as-soon-as-possible start times."""
    start: dict[str, float] = {}
    for name in dfg.topological_order():
        start[name] = max(
            (start[p] + delays[p] for p in dfg.predecessors(name)),
            default=0.0,
        )
    return start


def alap_times(
    dfg: Dfg, delays: dict[str, float], horizon: float | None = None
) -> dict[str, float]:
    """As-late-as-possible start times against ``horizon``.

    ``horizon`` defaults to the critical-path length (so critical ops get
    zero slack).
    """
    asap = asap_times(dfg, delays)
    if horizon is None:
        horizon = max(
            (asap[op.name] + delays[op.name] for op in dfg), default=0.0
        )
    start: dict[str, float] = {}
    for name in reversed(dfg.topological_order()):
        succs = dfg.successors(name)
        latest_finish = min(
            (start[s] for s in succs), default=horizon
        )
        start[name] = latest_finish - delays[name]
    return start


def list_schedule(
    dfg: Dfg, library: FuLibrary, allocation: Allocation
) -> Schedule:
    """Resource-constrained list scheduling in continuous time.

    Ties are broken deterministically (slack, then name), so estimates
    are reproducible run to run.
    """
    delays = _delay_of(dfg, library, allocation)
    alap = alap_times(dfg, delays)

    # Free time per (unit name, instance index).
    instances = allocation.instances()
    free_at: dict[tuple[str, int], float] = {
        (unit, idx): 0.0
        for unit, count in instances.items()
        for idx in range(count)
    }

    remaining_preds = {
        op.name: len(dfg.predecessors(op.name)) for op in dfg
    }
    data_ready: dict[str, float] = {
        op.name: 0.0 for op in dfg if remaining_preds[op.name] == 0
    }
    # Priority queue of schedulable ops: (slack, name).
    ready: list[tuple[float, str]] = [
        (alap[name], name) for name in data_ready
    ]
    heapq.heapify(ready)

    schedule = Schedule()
    scheduled = 0
    total = len(dfg)
    while ready:
        _priority, name = heapq.heappop(ready)
        op = dfg.operation(name)
        unit_name, _count = allocation.unit_for(op.kind)
        # Earliest-free instance of the op's unit type.
        candidates = [
            (free_at[key], key)
            for key in free_at
            if key[0] == unit_name
        ]
        free_time, key = min(candidates)
        start = max(data_ready[name], free_time)
        finish = start + delays[name]
        free_at[key] = finish
        schedule.start[name] = start
        schedule.finish[name] = finish
        schedule.unit_of[name] = key
        schedule.makespan = max(schedule.makespan, finish)
        scheduled += 1
        for succ in dfg.successors(name):
            remaining_preds[succ] -= 1
            data_ready[succ] = max(data_ready.get(succ, 0.0), finish)
            if remaining_preds[succ] == 0:
                heapq.heappush(ready, (alap[succ], succ))
    if scheduled != total:
        raise RuntimeError(
            f"list scheduling left {total - scheduled} operations "
            f"unscheduled in {dfg.name!r} (cycle?)"
        )
    return schedule
