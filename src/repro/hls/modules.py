"""Functional-unit library with bit-width-parameterized area/delay models.

Models the estimation substrate behind the paper's design points (their
tool follows [18]; ours uses standard first-order FPGA cost models):

* a ripple/carry adder grows linearly with bit-width in both area and
  delay,
* an array multiplier grows quadratically in area and linearly in delay,
* CLB-style area units and nanosecond delays keep the numbers in the same
  regime as the paper's Table 2.

The exact constants are calibration knobs, not truth — what the
partitioner's search exploits is only the *monotone area/latency
trade-off* across module sets, which these models guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

__all__ = ["FuType", "FuLibrary", "default_library"]


@dataclass(frozen=True)
class FuType:
    """A functional-unit template instantiable at any bit-width.

    ``area_fn``/``delay_fn`` map a bit-width to CLB count and ns delay.
    """

    name: str
    kinds: frozenset[str]                 # operation kinds it executes
    area_fn: Callable[[int], float]
    delay_fn: Callable[[int], float]

    def area(self, bitwidth: int) -> float:
        value = self.area_fn(bitwidth)
        if value <= 0:
            raise ValueError(f"{self.name}: non-positive area at {bitwidth}b")
        return value

    def delay(self, bitwidth: int) -> float:
        value = self.delay_fn(bitwidth)
        if value <= 0:
            raise ValueError(f"{self.name}: non-positive delay at {bitwidth}b")
        return value

    def executes(self, kind: str) -> bool:
        return kind in self.kinds


class FuLibrary:
    """A collection of functional-unit types, indexed by operation kind."""

    def __init__(self, units: Mapping[str, FuType]) -> None:
        self._units = dict(units)
        if not self._units:
            raise ValueError("functional-unit library cannot be empty")

    def __iter__(self):
        return iter(self._units.values())

    def unit(self, name: str) -> FuType:
        return self._units[name]

    def units_for(self, kind: str) -> tuple[FuType, ...]:
        """All unit types able to execute operation kind ``kind``."""
        found = tuple(u for u in self._units.values() if u.executes(kind))
        if not found:
            raise KeyError(
                f"no functional unit executes operation kind {kind!r}"
            )
        return found

    def cheapest_for(self, kind: str, bitwidth: int) -> FuType:
        """The smallest-area unit for ``kind`` at ``bitwidth``."""
        return min(self.units_for(kind), key=lambda u: u.area(bitwidth))


def default_library() -> FuLibrary:
    """The standard library: adder, subtractor, multiplier, ALU.

    The ALU covers add/sub in one (slightly bigger, slightly slower)
    unit, giving the allocator genuine alternatives.
    """
    return FuLibrary(
        {
            "add": FuType(
                name="add",
                kinds=frozenset({"add"}),
                area_fn=lambda bw: 2.0 * bw,
                delay_fn=lambda bw: 1.5 * bw + 6.0,
            ),
            "sub": FuType(
                name="sub",
                kinds=frozenset({"sub"}),
                area_fn=lambda bw: 2.0 * bw,
                delay_fn=lambda bw: 1.5 * bw + 6.0,
            ),
            "alu": FuType(
                name="alu",
                kinds=frozenset({"add", "sub"}),
                area_fn=lambda bw: 2.6 * bw,
                delay_fn=lambda bw: 1.8 * bw + 8.0,
            ),
            "mul": FuType(
                name="mul",
                kinds=frozenset({"mul"}),
                area_fn=lambda bw: 0.9 * bw * bw,
                delay_fn=lambda bw: 4.0 * bw + 12.0,
            ),
        }
    )
