"""Module-set (allocation) enumeration.

A *module set* fixes, for every operation kind of a task's DFG, which
functional-unit type implements it and how many instances exist.  The
estimator turns each allocation into one design point by scheduling the
DFG on it.  The enumeration is the raw design space; Pareto pruning
happens afterwards in :mod:`repro.hls.estimator`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.hls.dfg import Dfg
from repro.hls.modules import FuLibrary

__all__ = ["Allocation", "enumerate_allocations"]


@dataclass(frozen=True)
class Allocation:
    """One allocation: per operation kind, (unit type, instance count)."""

    assignments: tuple[tuple[str, str, int], ...]   # (kind, unit name, count)

    def instances(self) -> dict[str, int]:
        """Instance count per unit name (merging kinds sharing a unit)."""
        merged: dict[str, int] = {}
        for _kind, unit, count in self.assignments:
            merged[unit] = max(merged.get(unit, 0), count)
        return merged

    def unit_for(self, kind: str) -> tuple[str, int]:
        for assigned_kind, unit, count in self.assignments:
            if assigned_kind == kind:
                return unit, count
        raise KeyError(kind)


def enumerate_allocations(
    dfg: Dfg,
    library: FuLibrary,
    max_instances_per_kind: int = 4,
    limit: int = 512,
) -> list[Allocation]:
    """All allocations covering the DFG's kinds, capped at ``limit``.

    For each operation kind the choices are every capable unit type at
    every instance count from 1 to ``min(#ops of the kind,
    max_instances_per_kind)``.  The cartesian product across kinds is
    truncated (breadth-first over instance counts, so small allocations
    survive truncation) when it exceeds ``limit``.
    """
    kinds = dfg.kinds()
    if not kinds:
        return []
    per_kind: list[list[tuple[str, str, int]]] = []
    for kind, op_count in sorted(kinds.items()):
        cap = max(1, min(op_count, max_instances_per_kind))
        choices = [
            (kind, unit.name, count)
            for count in range(1, cap + 1)
            for unit in library.units_for(kind)
        ]
        per_kind.append(choices)

    # Sort the product by total instance count so truncation keeps the
    # cheap end of the space (the paper prunes the same way: candidate
    # points, smallest first).
    product = itertools.product(*per_kind)
    scored = sorted(
        product, key=lambda combo: (sum(c for _k, _u, c in combo), combo)
    )
    allocations = [Allocation(tuple(combo)) for combo in scored[:limit]]
    return allocations
