"""Algorithm ``Reduce_Latency`` — latency refinement by binary subdivision.

This is Figure 1 of the paper.  For a fixed partition bound ``N`` and a
latency window ``[D_min, D_max]`` it repeatedly

1. asks the ILP for *any* constraint-satisfying solution in the window,
2. on success, pulls the upper bound down to the achieved latency and
   bisects the remaining window,
3. on failure, pushes the lower bound up to the tried upper bound,

until the window is narrower than the *latency tolerance* ``delta`` or
the incumbent sits within ``delta`` of the lower bound.  The tolerance
trades solution quality against run time: the paper's Tables 5 vs 7 (and
6 vs 8) show ``delta = 100`` finding better solutions than
``delta = 800`` at the cost of more iterations — our ablation benchmark
reproduces that trade-off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.arch.processor import ReconfigurableProcessor
from repro.core.formulation import (
    FormulationOptions,
    build_model,
    lp_latency_lower_bound,
)
from repro.core.solution import PartitionedDesign
from repro.core.trace import IterationRecord, SearchTrace
from repro.ilp import SolveStatus
from repro.taskgraph.graph import TaskGraph

__all__ = ["SolverSettings", "ReduceLatencyResult", "reduce_latency"]


@dataclass(frozen=True)
class SolverSettings:
    """How each ``SolveModel()`` call is executed.

    Attributes
    ----------
    backend:
        ILP backend name (``"highs"`` or ``"bnb"``).
    time_limit:
        Per-solve wall-clock budget.  A solve that exhausts it without an
        incumbent is treated as infeasible by the search — the same
        pragmatic convention the paper applies to CPLEX runs.
    use_lp_bound:
        Tighten ``D_min`` with the LP-relaxation latency bound
        (:func:`repro.core.formulation.lp_latency_lower_bound`) before the
        bisection starts.  Windows below the LP bound are provably empty,
        so this removes most time-limited infeasibility probes.  An
        extension over the paper; disable to reproduce the paper's exact
        bound bookkeeping (Ablation E compares both).
    guide_with_objective:
        Attach the latency objective even in constraint-satisfaction mode
        so the MILP heuristics aim low; the first incumbent is still
        accepted as-is (the paper's semantics).
    """

    backend: str = "highs"
    time_limit: float | None = 60.0
    node_limit: int | None = None
    use_lp_bound: bool = True
    guide_with_objective: bool = True
    extra: dict = field(default_factory=dict)


@dataclass
class ReduceLatencyResult:
    """Outcome of one :func:`reduce_latency` run (one partition bound)."""

    num_partitions: int
    design: PartitionedDesign | None
    achieved: float | None           # total latency incl. reconfiguration
    trace: SearchTrace

    @property
    def feasible(self) -> bool:
        return self.design is not None


def _solve_window(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    num_partitions: int,
    d_max: float,
    d_min: float,
    options: FormulationOptions,
    settings: SolverSettings,
) -> tuple[PartitionedDesign | None, float, int]:
    """FormModel + SolveModel: one constraint-satisfaction ILP call.

    Returns ``(design, wall_time, solver_iterations)``; ``design`` is
    ``None`` on infeasibility (or when the solver ran out of budget
    without an incumbent, which the iterative procedure must treat the
    same way the paper treats CPLEX giving up).
    """
    start = time.perf_counter()
    if settings.guide_with_objective and not options.minimize_latency:
        options = replace(options, minimize_latency=True)
    tp_model = build_model(
        graph, processor, num_partitions, d_max, d_min, options
    )
    solution = tp_model.solve(
        backend=settings.backend,
        first_feasible=True,
        time_limit=settings.time_limit,
        node_limit=settings.node_limit,
        **settings.extra,
    )
    elapsed = time.perf_counter() - start
    if not solution.status.has_solution:
        return None, elapsed, solution.iterations
    design = tp_model.design_from(solution)
    return design, elapsed, solution.iterations


def reduce_latency(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    num_partitions: int,
    d_max: float,
    d_min: float,
    delta: float,
    options: FormulationOptions | None = None,
    settings: SolverSettings | None = None,
    deadline: float | None = None,
) -> ReduceLatencyResult:
    """Run Algorithm ``Reduce_Latency(N, D_max, D_min)`` (Figure 1).

    Parameters
    ----------
    num_partitions:
        The partition bound ``N``.
    d_max, d_min:
        Latency window *including* the ``N * C_T`` overhead, as produced
        by :func:`repro.core.bounds.max_latency` / ``min_latency`` or by
        the outer partition-space search.
    delta:
        Latency tolerance: the unexplored window the caller accepts.
    deadline:
        Absolute ``time.perf_counter()`` stamp after which no further ILP
        is started (the paper's ``TimeExpired()``).
    """
    if delta <= 0:
        raise ValueError("latency tolerance delta must be positive")
    options = options or FormulationOptions()
    settings = settings or SolverSettings()
    trace = SearchTrace()
    iteration = 1

    if settings.use_lp_bound:
        # Extension: windows below the LP-relaxation latency bound are
        # provably empty; raising D_min to the bound keeps every bisection
        # trial in the region where solutions may exist.
        lp_bound = lp_latency_lower_bound(
            graph, processor, num_partitions, options
        )
        if lp_bound > d_max:
            trace.add(
                IterationRecord(
                    num_partitions=num_partitions,
                    iteration=iteration,
                    d_max=d_max,
                    d_min=d_min,
                    achieved=None,
                )
            )
            return ReduceLatencyResult(num_partitions, None, None, trace)
        d_min = max(d_min, lp_bound)

    def record(window_max, window_min, achieved, wall, iters) -> None:
        nonlocal iteration
        trace.add(
            IterationRecord(
                num_partitions=num_partitions,
                iteration=iteration,
                d_max=window_max,
                d_min=window_min,
                achieved=achieved,
                wall_time=wall,
                solver_iterations=iters,
            )
        )
        iteration += 1

    # First call on the full window.
    design, wall, iters = _solve_window(
        graph, processor, num_partitions, d_max, d_min, options, settings
    )
    if design is None:
        record(d_max, d_min, None, wall, iters)
        return ReduceLatencyResult(num_partitions, None, None, trace)
    achieved = design.total_latency(processor)
    record(d_max, d_min, achieved, wall, iters)
    best = design

    while (d_max - d_min >= delta) and (achieved - d_min >= delta):
        if deadline is not None and time.perf_counter() > deadline:
            break
        # Bisect, then keep halving until the trial bound undercuts the
        # incumbent — otherwise the solve could return the same solution.
        trial = (d_max + d_min) / 2.0
        while trial >= achieved:
            trial = (trial + d_min) / 2.0
        candidate, wall, iters = _solve_window(
            graph, processor, num_partitions, trial, d_min, options, settings
        )
        if candidate is None:
            record(trial, d_min, None, wall, iters)
            d_min = trial
        else:
            achieved = candidate.total_latency(processor)
            record(trial, d_min, achieved, wall, iters)
            best = candidate
            d_max = achieved
    return ReduceLatencyResult(num_partitions, best, achieved, trace)
