"""Algorithm ``Reduce_Latency`` — latency refinement by binary subdivision.

This is Figure 1 of the paper.  For a fixed partition bound ``N`` and a
latency window ``[D_min, D_max]`` it repeatedly

1. asks the ILP for *any* constraint-satisfying solution in the window,
2. on success, pulls the upper bound down to the achieved latency and
   bisects the remaining window,
3. on failure, pushes the lower bound up to the tried upper bound,

until the window is narrower than the *latency tolerance* ``delta`` or
the incumbent sits within ``delta`` of the lower bound.  The tolerance
trades solution quality against run time: the paper's Tables 5 vs 7 (and
6 vs 8) show ``delta = 100`` finding better solutions than
``delta = 800`` at the cost of more iterations — our ablation benchmark
reproduces that trade-off.

Each window question is executed by the solver execution layer
(:class:`repro.solve.SolveExecutor`): backend portfolio racing, solve
memoization, deadline enforcement and graceful degradation all live
there, not in this algorithm (see ``docs/solving.md``).  The executor
also holds the run's :class:`repro.core.formulation.ModelTemplate`s, so
across the bisection's iterations the constraint system is built and
compiled once and each window costs two right-hand-side patches (see
``docs/architecture.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.arch.processor import ReconfigurableProcessor
from repro.core import bounds
from repro.core.formulation import (
    FormulationOptions,
    lp_latency_lower_bound,
)
from repro.core.solution import PartitionedDesign
from repro.core.trace import IterationRecord, SearchTrace
from repro.solve.executor import SolveExecutor, WindowOutcome
from repro.solve.telemetry import RunTelemetry
from repro.taskgraph.graph import TaskGraph

__all__ = ["SolverSettings", "ReduceLatencyResult", "reduce_latency"]


@dataclass(frozen=True)
class SolverSettings:
    """How each ``SolveModel()`` call is executed.

    Attributes
    ----------
    backend:
        ILP backend name (``"highs"`` or ``"bnb"``) used when no
        portfolio is configured.
    portfolio:
        When set (e.g. ``("highs", "bnb")``), every window solve races
        these backends concurrently and keeps the first conclusive
        verdict, cancelling the rest (``"cp"`` adds the problem-specific
        backtracker to the race).  ``None`` solves sequentially with
        ``backend`` — the previous behavior.
    time_limit:
        Per-solve wall-clock budget, enforced on every backend.  A solve
        that exhausts it without an incumbent is treated as infeasible by
        the search — the same pragmatic convention the paper applies to
        CPLEX runs — unless the greedy fallback produces a certificate
        (see ``heuristic_fallback``).
    use_lp_bound:
        Tighten ``D_min`` before the bisection starts, with both the
        LP-relaxation latency bound
        (:func:`repro.core.formulation.lp_latency_lower_bound`) and the
        combinatorial packing bound
        (:func:`repro.core.bounds.packing_min_latency`).  Windows below
        either bound are provably empty, so this removes the
        time-limited infeasibility probes — on area-tight instances the
        packing bound is the decisive one: it refutes by arithmetic the
        deep windows the MILP solver cannot refute within any practical
        budget.  An extension over the paper; disable to reproduce the
        paper's exact bound bookkeeping (Ablation E compares both).
        Applied identically on plain and accelerated paths, so it never
        perturbs trajectory identity.
    guide_with_objective:
        Attach the latency objective even in constraint-satisfaction mode
        so the MILP heuristics aim low; the first incumbent is still
        accepted as-is (the paper's semantics).
    enable_cache:
        Memoize window verdicts by model fingerprint
        (:mod:`repro.solve.cache`), reusing feasibility certificates and
        emptiness proofs across the run's near-identical ILPs.
    reuse_templates:
        Prepare window models incrementally: one
        :class:`repro.core.formulation.ModelTemplate` per model
        structure, instantiated per window by patching the two
        latency-row right-hand sides of the pre-compiled sparse form.
        Off, every iteration rebuilds (and recompiles, and rehashes) the
        full ILP from expressions — the pre-template behavior, kept as
        the baseline of ``benchmarks/test_model_build.py``.  Both paths
        produce array-identical models, so the search trajectory does
        not depend on this flag.
    heuristic_fallback:
        When every backend times out, fall back to the greedy
        level-packing heuristics and mark the outcome ``degraded=True``
        instead of silently reporting infeasibility.
    incumbent_reuse:
        Carry the last feasible assignment across windows: before any
        backend starts, the previous incumbent is checked against the
        new window's rows (one sparse matrix-vector product); if it
        still fits, the window is answered SAT with zero solver work,
        otherwise it is installed as a validated MILP warm start.
        Sound under the monotone window rules: the check is a full
        feasibility certificate, never a guess.
    primal_first:
        Run a cheap primal stage (LP relaxation + rounding/diving from
        :mod:`repro.ilp.rounding`) under a small budget before the
        portfolio race.  The paper's procedure only needs feasibility,
        so a primal hit skips the MILP entirely; an LP-infeasible
        relaxation is a proof of window emptiness and also skips it.
    reuse_basis:
        Re-use the previous window's optimal root-LP basis as a simplex
        warm start for RHS-only re-solves (own-engine branch & bound
        node LPs crash onto it instead of running phase I).
    persistent_cuts:
        Store cover cuts separated from the window-independent resource
        rows (6) on the run's :class:`ModelTemplate` and re-apply them
        to every instantiation, instead of re-separating from scratch.
    symmetry_breaking:
        Force :attr:`FormulationOptions.symmetry_breaking` on for every
        window model prepared by the executor (lexicographic
        partition-index ordering over interchangeable tasks, added at
        template-compile time).
    cache_path:
        When set, back the in-process solve cache with the persistent
        :class:`repro.solve.disk_cache.DiskSolveCache` at this path
        (SQLite).  Verdicts survive the process and are shared by every
        executor — and every *worker process* of the sharded service —
        pointed at the same file; the monotone reuse rules apply
        unchanged.  ``None`` (the default) keeps the cache in memory
        only, the previous behavior.
    analyze:
        Pre-solve model analysis mode (:mod:`repro.analysis`).
        ``"off"`` — the default — skips the analyzer entirely;
        ``"warn"`` runs both the structural and paper-conformance passes
        on every prepared window model, records the findings in
        telemetry and tracer events, and continues; ``"strict"``
        additionally raises
        :class:`repro.analysis.ModelAnalysisError` before any backend
        attempt when the report contains errors.  The diagnostic
        catalog lives in ``docs/analysis.md``.
    tracer:
        Optional :class:`repro.obs.Tracer` recording spans and events
        for every layer of the run (search iterations, window solves,
        backend attempts, model preparation).  ``None`` — the default —
        routes all instrumentation to the no-op
        :data:`repro.obs.NULL_TRACER`; :class:`RunTelemetry` stays the
        cheap always-on aggregate either way.  Excluded from equality
        so settings compare by solver behavior, which tracing never
        changes.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry` accumulating
        labeled counters/gauges/histograms across runs (windows solved,
        per-backend attempts, cache tiers, solve-duration histograms).
        ``None`` — the default — routes all instrumentation to the
        no-op :data:`repro.obs.NULL_METRICS`.  Threaded exactly like
        ``tracer``: excluded from equality, never crosses the service
        wire boundary (shard workers build their own registry and ship
        a mergeable :class:`repro.obs.MetricsSnapshot` home instead).
        Scrape it with ``repro-tp serve --metrics-port`` or render it
        with :func:`repro.obs.render_promtext`.
    """

    backend: str = "highs"
    portfolio: tuple[str, ...] | None = None
    time_limit: float | None = 60.0
    node_limit: int | None = None
    use_lp_bound: bool = True
    guide_with_objective: bool = True
    enable_cache: bool = True
    reuse_templates: bool = True
    heuristic_fallback: bool = True
    incumbent_reuse: bool = False
    primal_first: bool = False
    reuse_basis: bool = False
    persistent_cuts: bool = False
    symmetry_breaking: bool = False
    cache_path: str | None = None
    analyze: str = "off"
    extra: dict = field(default_factory=dict)
    tracer: "object | None" = field(default=None, repr=False, compare=False)
    metrics: "object | None" = field(default=None, repr=False, compare=False)

    # -- presets -------------------------------------------------------------
    #
    # Service callers pick a profile instead of hand-assembling nine
    # keywords.  Each preset is *exactly* a hand-built SolverSettings
    # (property-tested field for field in tests/solve/test_presets.py);
    # keyword overrides are forwarded to the constructor and win over
    # the preset's choices.

    #: The acceleration switches the presets toggle as a group.
    ACCELERATION_FLAGS = (
        "incumbent_reuse",
        "primal_first",
        "reuse_basis",
        "persistent_cuts",
        "symmetry_breaking",
    )

    @classmethod
    def fast(cls, **overrides) -> "SolverSettings":
        """Lowest wall time: portfolio race + every acceleration on.

        Races the HiGHS and native branch-&-bound backends per window
        and enables all of :data:`ACCELERATION_FLAGS` (cross-window
        incumbent carry, primal-first pipeline, basis reuse, persistent
        cuts, symmetry breaking).  Verdict-equivalent to the defaults;
        iteration-level traces may differ.
        """
        base: dict = {"portfolio": ("highs", "bnb")}
        base.update({flag: True for flag in cls.ACCELERATION_FLAGS})
        base.update(overrides)
        return cls(**base)

    @classmethod
    def paper_exact(cls, **overrides) -> "SolverSettings":
        """The paper's bookkeeping, bit for bit.

        Disables every extension that could change the search
        trajectory relative to Kaul & Vemuri's procedure: no LP/packing
        bound tightening, no objective guidance in satisfaction mode,
        no acceleration flags, and no greedy fallback — a budget-
        exhausted solve reads as infeasible, the paper's convention for
        CPLEX timeouts.  (The solve cache and model templates stay on:
        both are trajectory-preserving.)
        """
        base: dict = {
            "use_lp_bound": False,
            "guide_with_objective": False,
            "heuristic_fallback": False,
        }
        base.update({flag: False for flag in cls.ACCELERATION_FLAGS})
        base.update(overrides)
        return cls(**base)

    @classmethod
    def debug(cls, **overrides) -> "SolverSettings":
        """Fail loudly, hide nothing.

        Strict pre-solve analysis (malformed models raise before any
        backend runs), no solve cache (every window truly solves), and
        no greedy fallback (budget exhaustion surfaces instead of
        degrading).  Pair with ``tracer=...`` for the full span tree.
        """
        base: dict = {
            "analyze": "strict",
            "enable_cache": False,
            "heuristic_fallback": False,
        }
        base.update(overrides)
        return cls(**base)


@dataclass
class ReduceLatencyResult:
    """Outcome of one :func:`reduce_latency` run (one partition bound)."""

    num_partitions: int
    design: PartitionedDesign | None
    achieved: float | None           # total latency incl. reconfiguration
    trace: SearchTrace
    degraded: bool = False           # some window fell back past every backend
    telemetry: RunTelemetry | None = None

    @property
    def feasible(self) -> bool:
        return self.design is not None


def reduce_latency(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    num_partitions: int,
    d_max: float,
    d_min: float,
    delta: float,
    options: FormulationOptions | None = None,
    settings: SolverSettings | None = None,
    deadline: float | None = None,
    executor: SolveExecutor | None = None,
    should_stop: Callable[[], bool] | None = None,
) -> ReduceLatencyResult:
    """Run Algorithm ``Reduce_Latency(N, D_max, D_min)`` (Figure 1).

    Parameters
    ----------
    num_partitions:
        The partition bound ``N``.
    d_max, d_min:
        Latency window *including* the ``N * C_T`` overhead, as produced
        by :func:`repro.core.bounds.max_latency` / ``min_latency`` or by
        the outer partition-space search.
    delta:
        Latency tolerance: the unexplored window the caller accepts.
    deadline:
        Absolute ``time.perf_counter()`` stamp after which no further ILP
        is started (the paper's ``TimeExpired()``); also clips every
        backend's per-solve budget.
    executor:
        The execution layer to solve through.  Passing one shares its
        solve cache and telemetry across calls (the outer search does
        this); when ``None`` a fresh executor is built from ``settings``.
    should_stop:
        Optional cooperative-cancellation probe, polled wherever the
        deadline is (before each bisection trial).  Used by the sharded
        service so one worker's batch cancellation (or a sibling's
        better bound) stops the others without killing processes.
        ``None`` — the default — changes nothing: the search trajectory
        is bit-identical to a run without the parameter.
    """
    if delta <= 0:
        raise ValueError("latency tolerance delta must be positive")
    options = options or FormulationOptions()
    settings = settings or SolverSettings()
    if executor is None:
        executor = SolveExecutor(settings)
    # The executor's tracer is the run's tracer: sharing an executor
    # across calls keeps every span in one tree.
    tracer = executor.tracer
    trace = SearchTrace()
    iteration = 1
    degraded = False

    with tracer.span(
        "reduce_latency",
        num_partitions=num_partitions,
        d_min=float(d_min),
        d_max=float(d_max),
        delta=float(delta),
    ) as rl_span:

        def result(design, achieved) -> ReduceLatencyResult:
            rl_span.annotate(
                feasible=design is not None,
                achieved=achieved,
                iterations=len(trace),
                degraded=degraded,
            )
            return ReduceLatencyResult(
                num_partitions,
                design,
                achieved,
                trace,
                degraded=degraded,
                telemetry=executor.telemetry,
            )

        if settings.use_lp_bound:
            # Extension: windows below the LP-relaxation latency bound or
            # the combinatorial packing bound are provably empty; raising
            # D_min to the tighter of the two keeps every bisection trial
            # in the region where solutions may exist.
            with tracer.span("lp_bound", num_partitions=num_partitions) as sp:
                lp_bound = lp_latency_lower_bound(
                    graph, processor, num_partitions, options
                )
                sp.annotate(bound=lp_bound)
            with tracer.span(
                "packing_bound", num_partitions=num_partitions
            ) as sp:
                packing = bounds.packing_min_latency(
                    graph, processor, num_partitions
                )
                sp.annotate(bound=packing)
            tightened = max(lp_bound, packing)
            if tightened > d_max:
                tracer.event(
                    "bound_prunes_window",
                    lp_bound=lp_bound,
                    packing_bound=packing,
                    d_max=d_max,
                )
                trace.add(
                    IterationRecord(
                        num_partitions=num_partitions,
                        iteration=iteration,
                        d_max=d_max,
                        d_min=d_min,
                        achieved=None,
                    )
                )
                return result(None, None)
            d_min = max(d_min, tightened)

        def solve(window_max: float, window_min: float) -> WindowOutcome:
            nonlocal iteration, degraded
            with tracer.span(
                "iteration",
                iteration=iteration,
                num_partitions=num_partitions,
                d_min=float(window_min),
                d_max=float(window_max),
            ):
                outcome = executor.solve_window(
                    graph,
                    processor,
                    num_partitions,
                    window_max,
                    window_min,
                    options,
                    deadline=deadline,
                )
            degraded = degraded or outcome.degraded
            trace.add(
                IterationRecord(
                    num_partitions=num_partitions,
                    iteration=iteration,
                    d_max=window_max,
                    d_min=window_min,
                    achieved=outcome.achieved,
                    wall_time=outcome.wall_time,
                    solver_iterations=outcome.iterations,
                    backend=outcome.backend,
                    cache_hit=outcome.cache_hit,
                    degraded=outcome.degraded,
                )
            )
            iteration += 1
            return outcome

        # First call on the full window.
        first = solve(d_max, d_min)
        if first.design is None:
            return result(None, None)
        achieved = first.achieved
        best = first.design

        while (d_max - d_min >= delta) and (achieved - d_min >= delta):
            if deadline is not None and time.perf_counter() > deadline:
                tracer.event("deadline_expired", phase="bisection")
                break
            if should_stop is not None and should_stop():
                tracer.event("cancelled", phase="bisection")
                break
            # Bisect, then keep halving until the trial bound undercuts the
            # incumbent — otherwise the solve could return the same solution.
            trial = (d_max + d_min) / 2.0
            while trial >= achieved:
                trial = (trial + d_min) / 2.0
            candidate = solve(trial, d_min)
            if candidate.design is None:
                d_min = trial
            else:
                achieved = candidate.achieved
                best = candidate.design
                d_max = achieved
        return result(best, achieved)
