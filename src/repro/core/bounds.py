"""Partition-count and latency bounds (paper, Section 3.1).

Four estimators seed and steer the iterative search:

* :func:`min_area_partitions` — ``N_min^l``: partitions needed if every
  task uses its *smallest* design point (a true lower bound on the
  partition count of any feasible solution),
* :func:`max_area_partitions` — ``N_min^u``: partitions needed if every
  task uses its *largest* design point.  As the paper is careful to note,
  this is **not** an upper bound on partitions a solution may need (a
  too-large task pushes its descendants to later partitions and leaves
  holes); it is the *minimum* count to explore when mapping maximum-area
  points, and the search ranges up to ``N_min^u + gamma``,
* :func:`max_latency` — ``D_max``: everything serialized on the slowest
  design points, plus ``N * C_T``,
* :func:`min_latency` — ``D_min``: critical path on the fastest design
  points, plus ``N * C_T``,
* :func:`packing_min_latency` — a capacity-aware ``D_min`` refinement:
  the area budget forces crowded partitions onto small (slow) design
  points, so the sum of per-partition latency maxima is bounded from
  below by a tiny grouping DP.  On area-tight instances (the paper's
  DCT at ``R_max = 576``) this bound sits far above the critical path
  and lets the search skip provably-empty windows that the MILP solver
  cannot refute within any practical budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.processor import ReconfigurableProcessor
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.paths import longest_path_latency

__all__ = [
    "min_area_partitions",
    "max_area_partitions",
    "max_latency",
    "min_latency",
    "packing_min_latency",
    "PartitionRange",
    "partition_range",
]


def min_area_partitions(graph: TaskGraph, resource_capacity: float) -> int:
    """``N_min^l = ceil(sum of minimum areas / R_max)`` (at least 1)."""
    if resource_capacity <= 0:
        raise ValueError("resource capacity must be positive")
    return max(1, math.ceil(graph.total_min_area() / resource_capacity))


def max_area_partitions(graph: TaskGraph, resource_capacity: float) -> int:
    """``N_min^u = ceil(sum of maximum areas / R_max)`` (at least 1)."""
    if resource_capacity <= 0:
        raise ValueError("resource capacity must be positive")
    return max(1, math.ceil(graph.total_max_area() / resource_capacity))


def max_latency(
    graph: TaskGraph, partitions: int, reconfiguration_time: float
) -> float:
    """``D_max(N)``: fully serial execution on slowest points + overhead."""
    if partitions < 1:
        raise ValueError("partition count must be at least 1")
    return graph.total_max_latency() + partitions * reconfiguration_time


def min_latency(
    graph: TaskGraph, partitions: int, reconfiguration_time: float
) -> float:
    """``D_min(N)``: critical path on fastest points + overhead."""
    if partitions < 1:
        raise ValueError("partition count must be at least 1")
    path = longest_path_latency(
        graph, lambda name: graph.task(name).min_latency
    )
    return path + partitions * reconfiguration_time


def packing_min_latency(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    partitions: int,
) -> float:
    """Capacity-aware lower bound on the total latency at ``<= N`` partitions.

    Any feasible design groups the tasks into ``eta <= N`` non-empty
    partitions whose chosen-point areas fit ``R_max``, and each
    partition's latency ``d[p]`` is at least the latency of every member
    (the intra-partition path bound of equation (7) only adds to that).
    Two relaxations make the minimum over all such groupings computable
    in closed form:

    * ``h(content)`` — the smallest possible latency maximum of one
      partition holding a given number of tasks of each *type* (tasks
      with identical design-point sets are interchangeable): the
      smallest latency ``L`` at which every member's cheapest
      ``<= L`` point still fits the area budget together.  Crowded
      partitions are forced onto small, slow points — on area-tight
      instances ``h`` jumps sharply at the crowding threshold.
    * a counting DP over contents: ``D(state, g)`` = least sum of ``h``
      over ``g`` partitions covering ``state`` tasks of each type.
      Which *individual* task lands where is relaxed away; only the
      type profile matters.  When the type/content space is too wide,
      all tasks collapse to one pseudo-type over the union of their
      points (a weaker multiset relaxation, always cheap).

    The bound is ``min over eta <= N of D(m, eta) + eta * C_T`` (the
    reconfiguration term counts *used* partitions, exactly as the window
    rows (9)-(10) do), combined with nothing else — callers take the max
    with :func:`min_latency`.  Every relaxation only discards
    constraints, so any window whose ``D_max`` lies below this value is
    provably empty.
    """
    if partitions < 1:
        raise ValueError("partition count must be at least 1")
    capacity = processor.resource_capacity
    c_t = processor.reconfiguration_time

    # Group the tasks by design-point set: within a "type" tasks are
    # interchangeable, so a partition's content is fully described by
    # how many tasks of each type it holds.  When the resulting state
    # space is too large (many distinct point sets), collapse everything
    # to one pseudo-type over the *union* of all points — the original
    # multiset relaxation, strictly weaker but always cheap.
    by_type: dict[tuple, int] = {}
    for task in graph:
        key = tuple(sorted((dp.latency, dp.area) for dp in task.design_points))
        by_type[key] = by_type.get(key, 0) + 1
    if not by_type:
        return 0.0
    num_tasks = sum(by_type.values())
    state_space = 1
    for count in by_type.values():
        state_space *= count + 1

    def group_costs(
        type_points: list[tuple], counts: tuple[int, ...]
    ) -> list[tuple[tuple[int, ...], float]] | None:
        """Every possible partition content with its latency floor.

        A content is a count per type; its floor ``h`` is the smallest
        latency threshold ``L`` at which everyone's cheapest ``<= L``
        point still fits the area budget together (exact per content —
        same-type tasks are interchangeable by construction).  Returns
        ``None`` when the list outgrows what the DP below can afford.
        """
        latencies = sorted(
            {latency for key in type_points for latency, _ in key}
        )
        level = {latency: i for i, latency in enumerate(latencies)}
        min_area = [
            [math.inf] * len(latencies) for _ in type_points
        ]
        for t, key in enumerate(type_points):
            row = min_area[t]
            for latency, area in key:
                i = level[latency]
                row[i] = min(row[i], area)
            for i in range(1, len(latencies)):
                row[i] = min(row[i], row[i - 1])

        def h(composition: tuple[int, ...]) -> float:
            for i, latency in enumerate(latencies):
                needed = 0.0
                for t, k in enumerate(composition):
                    if k:
                        area = min_area[t][i]
                        if math.isinf(area):
                            needed = math.inf
                            break
                        needed += k * area
                if needed <= capacity:
                    return latency
            return math.inf

        stack: list[tuple[int, ...]] = [()]
        for count in counts:
            stack = [
                prefix + (k,)
                for prefix in stack
                for k in range(count + 1)
            ]
        out: list[tuple[tuple[int, ...], float]] = []
        for comp in stack:
            if not any(comp):
                continue
            cost = h(comp)
            if cost < math.inf:
                out.append((comp, cost))
                if len(out) > 64:
                    return None
        return out

    type_points = list(by_type)
    counts = tuple(by_type[key] for key in type_points)
    comps = None
    if state_space <= 2048:
        comps = group_costs(type_points, counts)
    if comps is None:
        # Too many distinct contents for the exact DP: collapse to one
        # pseudo-type over the union of all points (the multiset
        # relaxation — strictly weaker but always cheap, and loose
        # instances land below the critical path anyway).
        union = tuple(sorted({p for key in by_type for p in key}))
        type_points = [union]
        counts = (num_tasks,)
        comps = group_costs(type_points, counts)
        if comps is None:
            # Even the collapsed DP is too wide (large loose instance):
            # give up on refinement, 0 is still a valid lower bound.
            return 0.0
    if not comps:
        return math.inf

    # D(state, g): least sum of per-partition latency maxima covering
    # ``state`` tasks of each type with exactly ``g`` partitions.  The
    # bound is the best ``D(all tasks, eta) + eta * C_T`` over every
    # usable partition count — the whole range must be scanned, because
    # with a small ``C_T`` splitting finer keeps paying off.
    full = counts
    dp: dict[tuple[int, ...], float] = {(0,) * len(counts): 0.0}
    best_bound = math.inf
    for eta in range(1, partitions + 1):
        nxt: dict[tuple[int, ...], float] = {}
        for state, cost in dp.items():
            for comp, comp_cost in comps:
                merged = tuple(s + k for s, k in zip(state, comp))
                if any(m > c for m, c in zip(merged, full)):
                    continue
                candidate = cost + comp_cost
                held = nxt.get(merged)
                if held is None or candidate < held:
                    nxt[merged] = candidate
        dp = nxt
        if not dp:
            break
        covered = dp.get(full)
        if covered is not None:
            best_bound = min(best_bound, covered + eta * c_t)
    return best_bound


@dataclass(frozen=True)
class PartitionRange:
    """The partition counts the search explores: ``[start, stop]``."""

    lower_bound: int       # N_min^l
    upper_seed: int        # N_min^u
    start: int             # N_min^l + alpha
    stop: int              # N_min^u + gamma

    def __iter__(self):
        return iter(range(self.start, self.stop + 1))


def partition_range(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    alpha: int = 0,
    gamma: int = 0,
) -> PartitionRange:
    """Compute the explored range per the paper's Figure 2 preamble.

    ``alpha`` (*Starting Partition Relaxation*) shifts the entry point past
    ``N_min^l``; ``gamma`` (*Ending Partition Relaxation*) extends past
    ``N_min^u``.  For large-``C_T`` architectures both default to 0
    because the least-partition solution dominates.
    """
    if alpha < 0 or gamma < 0:
        raise ValueError("alpha and gamma must be non-negative")
    lower = min_area_partitions(graph, processor.resource_capacity)
    upper = max_area_partitions(graph, processor.resource_capacity)
    return PartitionRange(
        lower_bound=lower,
        upper_seed=upper,
        start=lower + alpha,
        stop=max(upper + gamma, lower + alpha),
    )
