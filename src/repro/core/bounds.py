"""Partition-count and latency bounds (paper, Section 3.1).

Four estimators seed and steer the iterative search:

* :func:`min_area_partitions` — ``N_min^l``: partitions needed if every
  task uses its *smallest* design point (a true lower bound on the
  partition count of any feasible solution),
* :func:`max_area_partitions` — ``N_min^u``: partitions needed if every
  task uses its *largest* design point.  As the paper is careful to note,
  this is **not** an upper bound on partitions a solution may need (a
  too-large task pushes its descendants to later partitions and leaves
  holes); it is the *minimum* count to explore when mapping maximum-area
  points, and the search ranges up to ``N_min^u + gamma``,
* :func:`max_latency` — ``D_max``: everything serialized on the slowest
  design points, plus ``N * C_T``,
* :func:`min_latency` — ``D_min``: critical path on the fastest design
  points, plus ``N * C_T``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.processor import ReconfigurableProcessor
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.paths import longest_path_latency

__all__ = [
    "min_area_partitions",
    "max_area_partitions",
    "max_latency",
    "min_latency",
    "PartitionRange",
    "partition_range",
]


def min_area_partitions(graph: TaskGraph, resource_capacity: float) -> int:
    """``N_min^l = ceil(sum of minimum areas / R_max)`` (at least 1)."""
    if resource_capacity <= 0:
        raise ValueError("resource capacity must be positive")
    return max(1, math.ceil(graph.total_min_area() / resource_capacity))


def max_area_partitions(graph: TaskGraph, resource_capacity: float) -> int:
    """``N_min^u = ceil(sum of maximum areas / R_max)`` (at least 1)."""
    if resource_capacity <= 0:
        raise ValueError("resource capacity must be positive")
    return max(1, math.ceil(graph.total_max_area() / resource_capacity))


def max_latency(
    graph: TaskGraph, partitions: int, reconfiguration_time: float
) -> float:
    """``D_max(N)``: fully serial execution on slowest points + overhead."""
    if partitions < 1:
        raise ValueError("partition count must be at least 1")
    return graph.total_max_latency() + partitions * reconfiguration_time


def min_latency(
    graph: TaskGraph, partitions: int, reconfiguration_time: float
) -> float:
    """``D_min(N)``: critical path on fastest points + overhead."""
    if partitions < 1:
        raise ValueError("partition count must be at least 1")
    path = longest_path_latency(
        graph, lambda name: graph.task(name).min_latency
    )
    return path + partitions * reconfiguration_time


@dataclass(frozen=True)
class PartitionRange:
    """The partition counts the search explores: ``[start, stop]``."""

    lower_bound: int       # N_min^l
    upper_seed: int        # N_min^u
    start: int             # N_min^l + alpha
    stop: int              # N_min^u + gamma

    def __iter__(self):
        return iter(range(self.start, self.stop + 1))


def partition_range(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    alpha: int = 0,
    gamma: int = 0,
) -> PartitionRange:
    """Compute the explored range per the paper's Figure 2 preamble.

    ``alpha`` (*Starting Partition Relaxation*) shifts the entry point past
    ``N_min^l``; ``gamma`` (*Ending Partition Relaxation*) extends past
    ``N_min^u``.  For large-``C_T`` architectures both default to 0
    because the least-partition solution dominates.
    """
    if alpha < 0 or gamma < 0:
        raise ValueError("alpha and gamma must be non-negative")
    lower = min_area_partitions(graph, processor.resource_capacity)
    upper = max_area_partitions(graph, processor.resource_capacity)
    return PartitionRange(
        lower_bound=lower,
        upper_seed=upper,
        start=lower + alpha,
        stop=max(upper + gamma, lower + alpha),
    )
