"""A problem-specific backtracking solver (extension / ablation backend).

The paper solves the combined problem exclusively through ILP.  As an
ablation, this module solves the *same* constraint-satisfaction question —
"is there an assignment of tasks to at most ``N`` ordered partitions and
design points meeting area, memory and latency budgets?" — with a direct
backtracking search using constraint propagation:

* tasks are assigned in topological order, so the temporal-order
  constraint holds by construction (a task's earliest partition is the
  maximum partition of its predecessors),
* per-partition area, per-boundary memory and per-partition latency are
  maintained incrementally and pruned monotonically: all three can only
  grow as tasks are added, so exceeding a budget prunes the subtree,
* design points are tried smallest-area first (feasibility-friendly),
  partitions earliest first.

``benchmarks/test_ablation_backends.py`` compares this against the ILP
backends; on the paper's instances the CP search is competitive for
feasibility queries but — unlike the ILP — provides no latency lower
bounds, which the iterative procedure does not need.

Note the solver answers the ``<= d_max`` question only; the window's
``d_min`` bound exists in the ILP purely to steer the paper's bisection
bookkeeping and excludes no true design (see DESIGN.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.arch.processor import ReconfigurableProcessor
from repro.core.solution import PartitionedDesign, Placement
from repro.taskgraph.graph import TaskGraph

__all__ = ["CpStats", "cp_solve"]


@dataclass
class CpStats:
    """Search effort counters filled by :func:`cp_solve`."""

    nodes: int = 0
    backtracks: int = 0
    wall_time: float = 0.0
    timed_out: bool = False


def cp_solve(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    num_partitions: int,
    d_max: float,
    include_env_memory: bool = True,
    node_limit: int = 2_000_000,
    time_limit: float | None = None,
    stats: CpStats | None = None,
    should_stop: Callable[[], bool] | None = None,
    tracer=None,
) -> PartitionedDesign | None:
    """First assignment with total latency ``<= d_max``, or ``None``.

    ``d_max`` includes the reconfiguration overhead (``eta * C_T``),
    matching the ILP's equation (9).  ``should_stop`` is a cooperative
    cancellation predicate polled with the other budgets at every node;
    a cancelled search reports ``stats.timed_out`` (it proves nothing).
    ``tracer`` (:class:`repro.obs.Tracer`) receives periodic
    ``cp_checkpoint`` events with the node and backtrack counters.
    """
    if num_partitions < 1:
        raise ValueError("need at least one partition")
    stats = stats if stats is not None else CpStats()
    start = time.perf_counter()
    deadline = None if time_limit is None else start + time_limit
    checkpoint_every = 10_000
    next_checkpoint = checkpoint_every

    order = graph.topological_order()
    n = num_partitions
    c_t = processor.reconfiguration_time
    r_max = processor.resource_capacity
    m_max = processor.memory_capacity

    # Mutable search state, undone explicitly on backtrack.
    partition_of: dict[str, int] = {}
    point_of: dict[str, object] = {}
    finish: dict[str, float] = {}          # finish time within own partition
    area = [0.0] * (n + 1)                  # 1-based
    d_p = [0.0] * (n + 1)
    memory = [0.0] * (n + 1)                # occupancy at boundary p
    extra_used: dict[str, list[float]] = {
        kind: [0.0] * (n + 1) for kind, _cap in processor.extra_capacities
    }
    extra_caps = dict(processor.extra_capacities)

    def memory_deltas(name: str, p: int) -> list[tuple[int, float]]:
        """Boundary increments caused by placing ``name`` in ``p``."""
        deltas: list[tuple[int, float]] = []
        for pred in graph.predecessors(name):
            p_src = partition_of[pred]
            volume = graph.data_volume(pred, name)
            if volume and p_src < p:
                for boundary in range(p_src + 1, p + 1):
                    deltas.append((boundary, volume))
        if include_env_memory:
            volume_in = graph.env_input(name)
            if volume_in:
                for boundary in range(1, p + 1):
                    deltas.append((boundary, volume_in))
            volume_out = graph.env_output(name)
            if volume_out:
                for boundary in range(p + 1, n + 1):
                    deltas.append((boundary, volume_out))
        return deltas

    def latency_lower_bound() -> float:
        """Sound bound: current partition latencies can only grow."""
        used = max(partition_of.values(), default=0)
        return sum(d_p[1 : n + 1]) + used * c_t

    def out_of_budget() -> bool:
        if stats.nodes >= node_limit:
            return True
        if deadline is not None and time.perf_counter() > deadline:
            stats.timed_out = True
            return True
        if should_stop is not None and should_stop():
            stats.timed_out = True
            return True
        return False

    def place(index: int) -> bool:
        nonlocal next_checkpoint
        if index == len(order):
            return True
        if out_of_budget():
            return False
        name = order[index]
        task = graph.task(name)
        earliest = max(
            (partition_of[pred] for pred in graph.predecessors(name)),
            default=1,
        )
        points = sorted(task.design_points, key=lambda dp: (dp.area, dp.latency))
        for p in range(earliest, n + 1):
            deltas = memory_deltas(name, p)
            if any(
                memory[boundary] + volume > m_max + 1e-9
                for boundary, volume in deltas
            ):
                continue
            for point in points:
                if area[p] + point.area > r_max + 1e-9:
                    continue
                if any(
                    extra_used[kind][p] + point.resource_usage(kind)
                    > extra_caps[kind] + 1e-9
                    for kind in extra_used
                ):
                    continue
                stats.nodes += 1
                if tracer is not None and stats.nodes >= next_checkpoint:
                    next_checkpoint += checkpoint_every
                    tracer.event(
                        "cp_checkpoint",
                        nodes=stats.nodes,
                        backtracks=stats.backtracks,
                        depth=index,
                    )
                arrival = max(
                    (
                        finish[pred]
                        for pred in graph.predecessors(name)
                        if partition_of[pred] == p
                    ),
                    default=0.0,
                )
                new_finish = arrival + point.latency
                old_dp = d_p[p]
                # Tentatively apply.
                partition_of[name] = p
                point_of[name] = point
                finish[name] = new_finish
                area[p] += point.area
                for kind in extra_used:
                    extra_used[kind][p] += point.resource_usage(kind)
                d_p[p] = max(d_p[p], new_finish)
                for boundary, volume in deltas:
                    memory[boundary] += volume
                if latency_lower_bound() <= d_max + 1e-9 and place(index + 1):
                    return True
                # Undo.
                stats.backtracks += 1
                for boundary, volume in deltas:
                    memory[boundary] -= volume
                d_p[p] = old_dp
                for kind in extra_used:
                    extra_used[kind][p] -= point.resource_usage(kind)
                area[p] -= point.area
                del finish[name]
                del point_of[name]
                del partition_of[name]
                if out_of_budget():
                    return False
        return False

    found = place(0)
    stats.wall_time = time.perf_counter() - start
    if not found:
        return None
    placements = {
        name: Placement(partition_of[name], point_of[name])
        for name in order
    }
    return PartitionedDesign(graph, placements)
