"""Partitioned designs: the output of the temporal partitioner.

A :class:`PartitionedDesign` maps every task to a (1-based) temporal
partition and a chosen design point.  It knows how to compute the
quantities the paper reasons about:

* ``d_p`` — the latency of partition ``p``: the longest chain of
  dependent tasks placed in ``p`` (paper, Figure 4; because the temporal
  order constraint makes each global path's intersection with a partition
  contiguous, this equals the longest path of the induced subgraph),
* ``eta`` — the number of partitions actually used,
* the overall latency ``sum(d_p) + eta * C_T`` (equations (9)-(10)),
* per-boundary memory occupancy (equation (3) semantics),

and how to *audit* itself against a graph + processor, which is how every
solver result in this repository is independently verified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.arch.processor import ReconfigurableProcessor
from repro.taskgraph.designpoint import DesignPoint
from repro.taskgraph.graph import TaskGraph

__all__ = ["Placement", "PartitionedDesign", "ConstraintViolation"]


@dataclass(frozen=True)
class Placement:
    """Where one task went: partition index (1-based) and design point."""

    partition: int
    design_point: DesignPoint

    def __post_init__(self) -> None:
        if self.partition < 1:
            raise ValueError("partition indices are 1-based")


@dataclass(frozen=True)
class ConstraintViolation:
    """One audited constraint violation (kind, location, amount)."""

    kind: str          # "resource" | "memory" | "order" | "structure"
    where: str         # partition / boundary / edge description
    amount: float
    detail: str = ""

    def __str__(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return f"{self.kind} violation at {self.where}: {self.amount:g}{extra}"


class PartitionedDesign:
    """An assignment of every task to a partition and design point."""

    def __init__(
        self,
        graph: TaskGraph,
        placements: Mapping[str, Placement],
    ) -> None:
        self.graph = graph
        self.placements = dict(placements)
        missing = set(graph.task_names) - set(self.placements)
        extra = set(self.placements) - set(graph.task_names)
        if missing:
            raise ValueError(f"tasks without placement: {sorted(missing)}")
        if extra:
            raise ValueError(f"placements for unknown tasks: {sorted(extra)}")

    # -- convenience constructors ------------------------------------------

    @staticmethod
    def from_labels(
        graph: TaskGraph,
        assignment: Mapping[str, tuple[int, str]],
    ) -> "PartitionedDesign":
        """Build from ``task -> (partition, design_point_label)``."""
        placements = {
            name: Placement(partition, graph.task(name).design_point(label))
            for name, (partition, label) in assignment.items()
        }
        return PartitionedDesign(graph, placements)

    # -- structure -------------------------------------------------------------

    def partition_of(self, task: str) -> int:
        return self.placements[task].partition

    def design_point_of(self, task: str) -> DesignPoint:
        return self.placements[task].design_point

    @property
    def num_partitions_used(self) -> int:
        """``eta`` — the highest partition index any task occupies."""
        return max(p.partition for p in self.placements.values())

    def partitions(self) -> tuple[int, ...]:
        """Sorted distinct partition indices in use."""
        return tuple(sorted({p.partition for p in self.placements.values()}))

    def tasks_in(self, partition: int) -> tuple[str, ...]:
        return tuple(
            name
            for name in self.graph.task_names
            if self.placements[name].partition == partition
        )

    def compacted(self) -> "PartitionedDesign":
        """Renumber partitions to remove empty ones (1..eta dense)."""
        used = self.partitions()
        renumber = {old: new for new, old in enumerate(used, start=1)}
        placements = {
            name: Placement(renumber[pl.partition], pl.design_point)
            for name, pl in self.placements.items()
        }
        return PartitionedDesign(self.graph, placements)

    # -- latency (Figure 4 semantics) --------------------------------------------

    def partition_latency(self, partition: int) -> float:
        """``d_p``: longest dependent chain among tasks placed in ``p``."""
        members = set(self.tasks_in(partition))
        if not members:
            return 0.0
        finish: dict[str, float] = {}
        for name in self.graph.topological_order():
            if name not in members:
                continue
            arrival = max(
                (
                    finish[pred]
                    for pred in self.graph.predecessors(name)
                    if pred in members
                ),
                default=0.0,
            )
            finish[name] = arrival + self.placements[name].design_point.latency
        return max(finish.values())

    def execution_latency(self) -> float:
        """``sum(d_p)`` over used partitions (no reconfiguration cost)."""
        return sum(self.partition_latency(p) for p in self.partitions())

    def total_latency(self, processor: ReconfigurableProcessor) -> float:
        """Overall design latency: ``sum(d_p) + eta * C_T``."""
        return self.execution_latency() + processor.reconfiguration_overhead(
            self.num_partitions_used
        )

    # -- area and memory -------------------------------------------------------------

    def partition_area(self, partition: int) -> float:
        return sum(
            self.placements[name].design_point.area
            for name in self.tasks_in(partition)
        )

    def partition_resource_usage(self, partition: int, kind: str) -> float:
        """Usage of one extra resource type within ``partition``."""
        return sum(
            self.placements[name].design_point.resource_usage(kind)
            for name in self.tasks_in(partition)
        )

    def memory_at_boundary(
        self, partition: int, include_env: bool = True
    ) -> float:
        """Data live while partition ``p`` is resident (equation (3)).

        Counts edges whose producer ran strictly before ``p`` and whose
        consumer runs in ``p`` or later.  With ``include_env``, host input
        for tasks not yet executed (partition >= p) and host output of
        tasks already executed (partition < p) are buffered too.
        """
        total = 0.0
        for src, dst, volume in self.graph.edges:
            if (
                self.placements[src].partition < partition
                <= self.placements[dst].partition
            ):
                total += volume
        if include_env:
            for name, volume in self.graph.env_inputs.items():
                if self.placements[name].partition >= partition:
                    total += volume
            for name, volume in self.graph.env_outputs.items():
                if self.placements[name].partition < partition:
                    total += volume
        return total

    def peak_memory(self, include_env: bool = True) -> float:
        """Maximum boundary occupancy over all used partitions."""
        return max(
            self.memory_at_boundary(p, include_env)
            for p in range(1, self.num_partitions_used + 1)
        )

    # -- audit ------------------------------------------------------------------------

    def audit(
        self,
        processor: ReconfigurableProcessor,
        include_env_memory: bool = True,
    ) -> list[ConstraintViolation]:
        """Check every architectural and structural constraint.

        Returns an empty list when the design is valid.  This is the
        independent oracle used against solver outputs: it shares no code
        with the ILP formulation.
        """
        violations: list[ConstraintViolation] = []
        for src, dst, _volume in self.graph.edges:
            if self.placements[src].partition > self.placements[dst].partition:
                violations.append(
                    ConstraintViolation(
                        kind="order",
                        where=f"edge {src}->{dst}",
                        amount=(
                            self.placements[src].partition
                            - self.placements[dst].partition
                        ),
                        detail="producer placed after consumer",
                    )
                )
        for partition in self.partitions():
            area = self.partition_area(partition)
            if area > processor.resource_capacity + 1e-9:
                violations.append(
                    ConstraintViolation(
                        kind="resource",
                        where=f"partition {partition}",
                        amount=area - processor.resource_capacity,
                        detail=f"area {area:g} > R_max "
                        f"{processor.resource_capacity:g}",
                    )
                )
        for kind, capacity in processor.extra_capacities:
            for partition in self.partitions():
                usage = self.partition_resource_usage(partition, kind)
                if usage > capacity + 1e-9:
                    violations.append(
                        ConstraintViolation(
                            kind="resource",
                            where=f"partition {partition}",
                            amount=usage - capacity,
                            detail=f"{kind} usage {usage:g} > capacity "
                            f"{capacity:g}",
                        )
                    )
        for partition in range(1, self.num_partitions_used + 1):
            occupancy = self.memory_at_boundary(partition, include_env_memory)
            if occupancy > processor.memory_capacity + 1e-9:
                violations.append(
                    ConstraintViolation(
                        kind="memory",
                        where=f"boundary of partition {partition}",
                        amount=occupancy - processor.memory_capacity,
                        detail=f"live data {occupancy:g} > M_max "
                        f"{processor.memory_capacity:g}",
                    )
                )
        for name, placement in self.placements.items():
            if placement.design_point not in self.graph.task(name).design_points:
                violations.append(
                    ConstraintViolation(
                        kind="structure",
                        where=f"task {name}",
                        amount=1.0,
                        detail="design point does not belong to the task",
                    )
                )
        return violations

    def is_valid(
        self,
        processor: ReconfigurableProcessor,
        include_env_memory: bool = True,
    ) -> bool:
        return not self.audit(processor, include_env_memory)

    # -- reporting ------------------------------------------------------------------

    def summary(self, processor: ReconfigurableProcessor | None = None) -> str:
        """Human-readable multi-line description of the design."""
        lines = [f"PartitionedDesign of {self.graph.name!r}:"]
        for partition in self.partitions():
            tasks = self.tasks_in(partition)
            area = self.partition_area(partition)
            latency = self.partition_latency(partition)
            detail = ", ".join(
                f"{t}[{self.placements[t].design_point.label()}]"
                for t in tasks
            )
            lines.append(
                f"  partition {partition}: area={area:g} "
                f"latency={latency:g}  {detail}"
            )
        if processor is not None:
            lines.append(
                f"  total latency: {self.total_latency(processor):g} "
                f"(execution {self.execution_latency():g} + "
                f"{self.num_partitions_used} x C_T "
                f"{processor.reconfiguration_time:g})"
            )
        return "\n".join(lines)

    def design_point_label(self, task: str) -> str:
        """Round-trippable label of ``task``'s chosen design point.

        Unlike ``DesignPoint.label()`` alone, unnamed points resolve to
        their positional ``dp<i>`` fallback — the same label
        ``Task.design_point`` matches on — so the result always survives
        a :meth:`from_labels` round trip (serialization, disk cache,
        process boundary).
        """
        chosen = self.placements[task].design_point
        for index, dp in enumerate(self.graph.task(task).design_points, 1):
            if dp == chosen:
                return dp.label(index)
        return chosen.label()

    def as_assignment(self) -> dict[str, tuple[int, str]]:
        """Inverse of :meth:`from_labels` (JSON-friendly)."""
        return {
            name: (pl.partition, self.design_point_label(name))
            for name, pl in self.placements.items()
        }

    def __repr__(self) -> str:
        return (
            f"PartitionedDesign(tasks={len(self.placements)}, "
            f"eta={self.num_partitions_used})"
        )
