"""The partition-count/latency trade-off curve (Section 2, quantified).

``Refine_Partitions_Bound`` returns the single best design; this module
maps the whole curve ``N -> best achievable latency at exactly <= N
partitions`` by running the latency refinement independently at each
bound.  The curve is the paper's area-latency trade-off made concrete:

* for small ``C_T`` it typically *decreases* then flattens (more
  partitions buy faster design points until dependencies dominate),
* for large ``C_T`` it *increases* almost linearly (each partition costs
  a reconfiguration), which is why the search collapses to ``N_min^l``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.processor import ReconfigurableProcessor
from repro.core import bounds
from repro.core.formulation import FormulationOptions
from repro.core.reduce_latency import SolverSettings, reduce_latency
from repro.core.solution import PartitionedDesign
from repro.report import TextTable
from repro.taskgraph.graph import TaskGraph

__all__ = ["TradeoffPoint", "TradeoffCurve", "partition_latency_curve"]


@dataclass(frozen=True)
class TradeoffPoint:
    """Best-found design at one partition bound."""

    num_partitions: int
    total_latency: float | None
    execution_latency: float | None
    ilp_solves: int

    @property
    def feasible(self) -> bool:
        return self.total_latency is not None


@dataclass
class TradeoffCurve:
    """The N -> latency curve plus the designs behind it."""

    points: list[TradeoffPoint] = field(default_factory=list)
    designs: dict[int, PartitionedDesign] = field(default_factory=dict)

    def best(self) -> TradeoffPoint | None:
        feasible = [p for p in self.points if p.feasible]
        if not feasible:
            return None
        return min(feasible, key=lambda p: p.total_latency)

    def table(self, title: str = "Partition/latency trade-off") -> TextTable:
        table = TextTable(
            title,
            ("N", "total latency (ns)", "execution (ns)", "ILP solves"),
        )
        for point in self.points:
            table.add_row(
                point.num_partitions,
                point.total_latency,
                point.execution_latency,
                point.ilp_solves,
            )
        best = self.best()
        if best is not None:
            table.footer = (
                f"best: {best.total_latency:,.0f} ns at "
                f"N = {best.num_partitions}"
            )
        return table


def partition_latency_curve(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    partition_counts: range | list[int] | None = None,
    delta: float | None = None,
    options: FormulationOptions | None = None,
    settings: SolverSettings | None = None,
) -> TradeoffCurve:
    """Best-found latency per partition bound, independently per ``N``.

    Unlike ``Refine_Partitions_Bound`` — which carries the incumbent
    across bounds and stops early — every bound gets the full
    ``Reduce_Latency`` treatment, so the curve is comparable point to
    point (at the cost of more solves).
    """
    settings = settings or SolverSettings(time_limit=15.0)
    if partition_counts is None:
        prange = bounds.partition_range(graph, processor)
        partition_counts = range(prange.lower_bound, prange.stop + 1)
    curve = TradeoffCurve()
    c_t = processor.reconfiguration_time
    for n in partition_counts:
        d_max = bounds.max_latency(graph, n, c_t)
        d_min = bounds.min_latency(graph, n, c_t)
        tolerance = delta if delta is not None else 0.02 * d_max
        result = reduce_latency(
            graph, processor, n, d_max, d_min, tolerance,
            options=options, settings=settings,
        )
        if result.feasible:
            curve.designs[n] = result.design
            curve.points.append(
                TradeoffPoint(
                    num_partitions=n,
                    total_latency=result.achieved,
                    execution_latency=result.design.execution_latency(),
                    ilp_solves=len(result.trace),
                )
            )
        else:
            curve.points.append(
                TradeoffPoint(
                    num_partitions=n,
                    total_latency=None,
                    execution_latency=None,
                    ilp_solves=len(result.trace),
                )
            )
    return curve
