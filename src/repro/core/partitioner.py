"""The public facade: :class:`TemporalPartitioner`.

Wraps validation, bounds, the combined ILP formulation and the two-level
iterative search behind one call::

    from repro import TemporalPartitioner, PartitionerConfig
    from repro.arch import time_multiplexed
    from repro.taskgraph import dct_4x4

    partitioner = TemporalPartitioner(time_multiplexed(resource_capacity=576))
    outcome = partitioner.partition(dct_4x4())
    print(outcome.design.summary(partitioner.processor))
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.processor import ReconfigurableProcessor
from repro.core import bounds
from repro.core.formulation import FormulationOptions
from repro.core.reduce_latency import SolverSettings
from repro.core.refine_partitions import (
    RefinementConfig,
    RefinementResult,
    refine_partitions_bound,
)
from repro.core.solution import PartitionedDesign
from repro.core.trace import SearchTrace
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.validate import validate_graph

__all__ = ["PartitionerConfig", "PartitioningOutcome", "TemporalPartitioner"]


@dataclass(frozen=True)
class PartitionerConfig:
    """All user-facing parameters in one object.

    ``search`` carries the paper's algorithm parameters (``alpha``,
    ``gamma``, ``delta``, time budget); ``formulation`` the ILP modeling
    choices; ``solver`` the backend selection and per-solve budgets.
    """

    search: RefinementConfig = field(default_factory=RefinementConfig)
    formulation: FormulationOptions = field(
        default_factory=FormulationOptions
    )
    solver: SolverSettings = field(default_factory=SolverSettings)
    validate: bool = True


@dataclass
class PartitioningOutcome:
    """Everything a caller may want to know about one partitioning run."""

    design: PartitionedDesign | None
    total_latency: float | None       # incl. reconfiguration overhead
    trace: SearchTrace
    partition_range: bounds.PartitionRange
    delta: float
    stopped_by_min_latency_cut: bool
    stopped_by_time: bool

    @property
    def feasible(self) -> bool:
        return self.design is not None

    @property
    def num_partitions(self) -> int | None:
        return None if self.design is None else self.design.num_partitions_used

    @property
    def execution_latency(self) -> float | None:
        return None if self.design is None else self.design.execution_latency()


class TemporalPartitioner:
    """Combined temporal partitioning and design space exploration."""

    def __init__(
        self,
        processor: ReconfigurableProcessor,
        config: PartitionerConfig | None = None,
    ) -> None:
        self.processor = processor
        self.config = config or PartitionerConfig()

    def partition(self, graph: TaskGraph) -> PartitioningOutcome:
        """Partition ``graph`` for this processor.

        Raises
        ------
        repro.taskgraph.GraphValidationError
            When the graph is structurally unusable (cycles, or a task
            whose smallest design point exceeds the device capacity).
        """
        if self.config.validate:
            report = validate_graph(
                graph, resource_capacity=self.processor.resource_capacity
            )
            report.raise_if_failed()
        result: RefinementResult = refine_partitions_bound(
            graph,
            self.processor,
            config=self.config.search,
            options=self.config.formulation,
            settings=self.config.solver,
        )
        prange = bounds.partition_range(
            graph,
            self.processor,
            alpha=self.config.search.alpha,
            gamma=self.config.search.gamma,
        )
        return PartitioningOutcome(
            design=result.design,
            total_latency=result.achieved,
            trace=result.trace,
            partition_range=prange,
            delta=result.delta,
            stopped_by_min_latency_cut=result.stopped_by_min_latency_cut,
            stopped_by_time=result.stopped_by_time,
        )

    def bounds_for(self, graph: TaskGraph, num_partitions: int) -> tuple[float, float]:
        """(D_max, D_min) for ``num_partitions`` — convenience accessor."""
        c_t = self.processor.reconfiguration_time
        return (
            bounds.max_latency(graph, num_partitions, c_t),
            bounds.min_latency(graph, num_partitions, c_t),
        )
