"""The public facade: :class:`TemporalPartitioner`.

Wraps validation, bounds, the combined ILP formulation and the two-level
iterative search behind one call::

    from repro import PartitionRequest, TemporalPartitioner
    from repro.arch import time_multiplexed
    from repro.taskgraph import dct_4x4

    partitioner = TemporalPartitioner(time_multiplexed(resource_capacity=576))
    outcome = partitioner.solve(PartitionRequest(graph=dct_4x4()))
    print(outcome.design.summary(partitioner.processor))

:meth:`TemporalPartitioner.solve` on a :class:`PartitionRequest` is the
one documented entry point.  :meth:`TemporalPartitioner.partition` (the
original dual bare-graph/request signature) is deprecated and forwards
here with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field

from repro.arch.processor import ReconfigurableProcessor
from repro.core import bounds
from repro.core.formulation import FormulationOptions
from repro.core.reduce_latency import SolverSettings
from repro.core.refine_partitions import (
    RefinementConfig,
    RefinementResult,
    refine_partitions_bound,
)
from repro.core.solution import PartitionedDesign
from repro.core.trace import SearchTrace
from repro.solve.telemetry import RunTelemetry
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.validate import validate_graph

__all__ = [
    "OUTCOME_SCHEMA_VERSION",
    "PartitionerConfig",
    "PartitionRequest",
    "PartitioningOutcome",
    "TemporalPartitioner",
]

#: Wire-format version of :meth:`PartitioningOutcome.to_dict`.
#:
#: * 1 — implicit (payloads without a ``schema_version`` key): summary
#:   fields plus the design as a placement table keyed by design-point
#:   *name* (empty for unnamed points).
#: * 2 — explicit versioning; design-point labels are the round-trippable
#:   ``dp<i>`` fallbacks for unnamed points; ``partition_bounds`` carries
#:   the full :class:`repro.core.bounds.PartitionRange`; the search trace
#:   serializes via ``include_trace``; :meth:`PartitioningOutcome
#:   .from_dict` restores an outcome from the payload.
#: * 3 — adds ``scenario``, the id of the registered formulation
#:   scenario that produced the design (``paper_oneshot`` for every
#:   pre-v3 payload).
OUTCOME_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class PartitionerConfig:
    """All user-facing parameters in one object.

    ``search`` carries the paper's algorithm parameters (``alpha``,
    ``gamma``, ``delta``, time budget); ``formulation`` the ILP modeling
    choices; ``solver`` the backend selection and per-solve budgets.
    """

    search: RefinementConfig = field(default_factory=RefinementConfig)
    formulation: FormulationOptions = field(
        default_factory=FormulationOptions
    )
    solver: SolverSettings = field(default_factory=SolverSettings)
    validate: bool = True


@dataclass(frozen=True, kw_only=True)
class PartitionRequest:
    """One partitioning problem, fully described.

    Bundles what to partition (``graph``), where to run it
    (``processor``) and how to search (``config``).  ``processor`` and
    ``config`` default to the :class:`TemporalPartitioner`'s own when
    ``None``, so a request can be as small as
    ``PartitionRequest(graph=g)`` — or carry per-call overrides without
    mutating the partitioner.  Fields are keyword-only; derive variants
    with :meth:`replace` instead of rebuilding from scratch.
    """

    graph: TaskGraph
    processor: ReconfigurableProcessor | None = None
    config: PartitionerConfig | None = None

    def replace(self, **changes) -> "PartitionRequest":
        """A copy with ``changes`` applied (per-call overrides)::

            request.replace(processor=bigger_device)
        """
        return dataclasses.replace(self, **changes)


@dataclass(kw_only=True)
class PartitioningOutcome:
    """Everything a caller may want to know about one partitioning run.

    Fields are keyword-only: construct as
    ``PartitioningOutcome(design=..., total_latency=..., ...)``.  The
    outcome is self-describing — ``feasible``, ``degraded`` and
    ``telemetry`` answer "did it work, can I trust it, what did it cost"
    without digging through the trace, and :meth:`to_dict` serializes the
    lot for JSON reports.
    """

    design: PartitionedDesign | None
    total_latency: float | None       # incl. reconfiguration overhead
    trace: SearchTrace
    partition_range: bounds.PartitionRange
    delta: float
    stopped_by_min_latency_cut: bool
    stopped_by_time: bool
    #: At least one window solve exhausted every backend's budget and fell
    #: back to the greedy heuristics — the design is valid but possibly
    #: weaker than an exhaustive search would return.
    degraded: bool = False
    #: Execution-layer metrics (per-solve stats, backend wins, cache hit
    #: rate); ``None`` only for outcomes built outside the normal path.
    telemetry: RunTelemetry | None = None
    #: Id of the formulation scenario the design was solved under (see
    #: :mod:`repro.core.families`).
    scenario: str = "paper_oneshot"

    @property
    def feasible(self) -> bool:
        return self.design is not None

    @property
    def num_partitions(self) -> int | None:
        return None if self.design is None else self.design.num_partitions_used

    @property
    def execution_latency(self) -> float | None:
        return None if self.design is None else self.design.execution_latency()

    def to_dict(
        self,
        include_solves: bool = False,
        include_trace: bool = False,
    ) -> dict:
        """JSON-serializable summary (design as placement table).

        ``include_solves`` forwards to
        :meth:`repro.solve.RunTelemetry.to_dict` — per-solve records are
        verbose, so they are off by default.  ``include_trace`` adds the
        full per-iteration :class:`~repro.core.trace.SearchTrace` (the
        paper-table rows); :meth:`from_dict` restores it.
        """
        design = None
        if self.design is not None:
            design = {
                name: {
                    "partition": placement.partition,
                    "design_point": self.design.design_point_label(name),
                }
                for name, placement in sorted(self.design.placements.items())
            }
        payload = {
            "schema_version": OUTCOME_SCHEMA_VERSION,
            "scenario": self.scenario,
            "feasible": self.feasible,
            "degraded": self.degraded,
            "total_latency": self.total_latency,
            "execution_latency": self.execution_latency,
            "num_partitions": self.num_partitions,
            "partition_range": [
                self.partition_range.start,
                self.partition_range.stop,
            ],
            "partition_bounds": {
                "lower_bound": self.partition_range.lower_bound,
                "upper_seed": self.partition_range.upper_seed,
                "start": self.partition_range.start,
                "stop": self.partition_range.stop,
            },
            "delta": self.delta,
            "stopped_by_min_latency_cut": self.stopped_by_min_latency_cut,
            "stopped_by_time": self.stopped_by_time,
            "iterations": len(self.trace),
            "design": design,
            "telemetry": (
                None
                if self.telemetry is None
                else self.telemetry.to_dict(include_solves=include_solves)
            ),
        }
        if include_trace:
            payload["trace"] = self.trace.to_dict()
        return payload

    @classmethod
    def from_dict(
        cls, payload: dict, graph: TaskGraph | None = None
    ) -> "PartitioningOutcome":
        """Restore an outcome from a :meth:`to_dict` payload.

        Accepts schema versions 1 through 3 (version 1 payloads predate
        the ``schema_version`` key; pre-v3 payloads default ``scenario``
        to ``paper_oneshot``).  The design is only reconstructed when
        the originating ``graph`` is supplied — placements reference
        design points by label, which live on the graph's tasks; without
        it the summary fields round-trip and ``design`` stays ``None``.
        """
        version = int(payload.get("schema_version", 1))
        if version > OUTCOME_SCHEMA_VERSION:
            raise ValueError(
                f"outcome payload has schema_version {version}; "
                f"this build reads up to {OUTCOME_SCHEMA_VERSION}"
            )
        bounds_payload = payload.get("partition_bounds")
        if bounds_payload is not None:
            prange = bounds.PartitionRange(
                lower_bound=int(bounds_payload["lower_bound"]),
                upper_seed=int(bounds_payload["upper_seed"]),
                start=int(bounds_payload["start"]),
                stop=int(bounds_payload["stop"]),
            )
        else:
            start, stop = payload["partition_range"]
            prange = bounds.PartitionRange(
                lower_bound=int(start),
                upper_seed=int(stop),
                start=int(start),
                stop=int(stop),
            )
        design = None
        design_payload = payload.get("design")
        if design_payload is not None and graph is not None:
            design = PartitionedDesign.from_labels(
                graph,
                {
                    name: (
                        int(entry["partition"]),
                        str(entry["design_point"]),
                    )
                    for name, entry in design_payload.items()
                },
            )
        trace_payload = payload.get("trace")
        trace = (
            SearchTrace.from_dict(trace_payload)
            if trace_payload is not None
            else SearchTrace()
        )
        telemetry_payload = payload.get("telemetry")
        telemetry = (
            RunTelemetry.from_dict(telemetry_payload)
            if telemetry_payload is not None
            else None
        )
        return cls(
            design=design,
            total_latency=payload.get("total_latency"),
            trace=trace,
            partition_range=prange,
            delta=float(payload.get("delta", 0.0)),
            stopped_by_min_latency_cut=bool(
                payload.get("stopped_by_min_latency_cut", False)
            ),
            stopped_by_time=bool(payload.get("stopped_by_time", False)),
            degraded=bool(payload.get("degraded", False)),
            telemetry=telemetry,
            scenario=str(payload.get("scenario", "paper_oneshot")),
        )


class TemporalPartitioner:
    """Combined temporal partitioning and design space exploration."""

    def __init__(
        self,
        processor: ReconfigurableProcessor,
        config: PartitionerConfig | None = None,
    ) -> None:
        self.processor = processor
        self.config = config or PartitionerConfig()

    def solve(self, request: PartitionRequest) -> PartitioningOutcome:
        """Canonical entry point: solve one :class:`PartitionRequest`.

        Raises
        ------
        repro.taskgraph.GraphValidationError
            When the graph is structurally unusable (cycles, or a task
            whose smallest design point exceeds the device capacity).
        """
        processor = request.processor or self.processor
        config = request.config or self.config
        if config.validate:
            report = validate_graph(
                request.graph, resource_capacity=processor.resource_capacity
            )
            report.raise_if_failed()
        result: RefinementResult = refine_partitions_bound(
            request.graph,
            processor,
            config=config.search,
            options=config.formulation,
            settings=config.solver,
        )
        prange = bounds.partition_range(
            request.graph,
            processor,
            alpha=config.search.alpha,
            gamma=config.search.gamma,
        )
        return PartitioningOutcome(
            design=result.design,
            total_latency=result.achieved,
            trace=result.trace,
            partition_range=prange,
            delta=result.delta,
            stopped_by_min_latency_cut=result.stopped_by_min_latency_cut,
            stopped_by_time=result.stopped_by_time,
            degraded=result.degraded,
            telemetry=result.telemetry,
            scenario=config.formulation.scenario,
        )

    def partition(
        self, graph: TaskGraph | PartitionRequest
    ) -> PartitioningOutcome:
        """Deprecated: use :meth:`solve` with a :class:`PartitionRequest`.

        The dual bare-graph/request signature predates the request API;
        ``solve(PartitionRequest(graph=g))`` is the one documented entry
        point (and the only one the service layer speaks).  This wrapper
        forwards accordingly and will be removed in a future release.
        """
        warnings.warn(
            "TemporalPartitioner.partition() is deprecated; use "
            "solve(PartitionRequest(graph=...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if isinstance(graph, PartitionRequest):
            return self.solve(graph)
        return self.solve(PartitionRequest(graph=graph))

    def bounds_for(self, graph: TaskGraph, num_partitions: int) -> tuple[float, float]:
        """(D_max, D_min) for ``num_partitions`` — convenience accessor."""
        c_t = self.processor.reconfiguration_time
        return (
            bounds.max_latency(graph, num_partitions, c_t),
            bounds.min_latency(graph, num_partitions, c_t),
        )
