"""The public facade: :class:`TemporalPartitioner`.

Wraps validation, bounds, the combined ILP formulation and the two-level
iterative search behind one call::

    from repro import PartitionRequest, TemporalPartitioner
    from repro.arch import time_multiplexed
    from repro.taskgraph import dct_4x4

    partitioner = TemporalPartitioner(time_multiplexed(resource_capacity=576))
    outcome = partitioner.solve(PartitionRequest(graph=dct_4x4()))
    print(outcome.design.summary(partitioner.processor))

:meth:`TemporalPartitioner.solve` on a :class:`PartitionRequest` is the
canonical entry point; :meth:`TemporalPartitioner.partition` remains and
accepts either a bare :class:`~repro.taskgraph.graph.TaskGraph` (the
original API) or a request.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.processor import ReconfigurableProcessor
from repro.core import bounds
from repro.core.formulation import FormulationOptions
from repro.core.reduce_latency import SolverSettings
from repro.core.refine_partitions import (
    RefinementConfig,
    RefinementResult,
    refine_partitions_bound,
)
from repro.core.solution import PartitionedDesign
from repro.core.trace import SearchTrace
from repro.solve.telemetry import RunTelemetry
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.validate import validate_graph

__all__ = [
    "PartitionerConfig",
    "PartitionRequest",
    "PartitioningOutcome",
    "TemporalPartitioner",
]


@dataclass(frozen=True)
class PartitionerConfig:
    """All user-facing parameters in one object.

    ``search`` carries the paper's algorithm parameters (``alpha``,
    ``gamma``, ``delta``, time budget); ``formulation`` the ILP modeling
    choices; ``solver`` the backend selection and per-solve budgets.
    """

    search: RefinementConfig = field(default_factory=RefinementConfig)
    formulation: FormulationOptions = field(
        default_factory=FormulationOptions
    )
    solver: SolverSettings = field(default_factory=SolverSettings)
    validate: bool = True


@dataclass(frozen=True)
class PartitionRequest:
    """One partitioning problem, fully described.

    Bundles what to partition (``graph``), where to run it
    (``processor``) and how to search (``config``).  ``processor`` and
    ``config`` default to the :class:`TemporalPartitioner`'s own when
    ``None``, so a request can be as small as
    ``PartitionRequest(graph=g)`` — or carry per-call overrides without
    mutating the partitioner.
    """

    graph: TaskGraph
    processor: ReconfigurableProcessor | None = None
    config: PartitionerConfig | None = None


@dataclass(kw_only=True)
class PartitioningOutcome:
    """Everything a caller may want to know about one partitioning run.

    Fields are keyword-only: construct as
    ``PartitioningOutcome(design=..., total_latency=..., ...)``.  The
    outcome is self-describing — ``feasible``, ``degraded`` and
    ``telemetry`` answer "did it work, can I trust it, what did it cost"
    without digging through the trace, and :meth:`to_dict` serializes the
    lot for JSON reports.
    """

    design: PartitionedDesign | None
    total_latency: float | None       # incl. reconfiguration overhead
    trace: SearchTrace
    partition_range: bounds.PartitionRange
    delta: float
    stopped_by_min_latency_cut: bool
    stopped_by_time: bool
    #: At least one window solve exhausted every backend's budget and fell
    #: back to the greedy heuristics — the design is valid but possibly
    #: weaker than an exhaustive search would return.
    degraded: bool = False
    #: Execution-layer metrics (per-solve stats, backend wins, cache hit
    #: rate); ``None`` only for outcomes built outside the normal path.
    telemetry: RunTelemetry | None = None

    @property
    def feasible(self) -> bool:
        return self.design is not None

    @property
    def num_partitions(self) -> int | None:
        return None if self.design is None else self.design.num_partitions_used

    @property
    def execution_latency(self) -> float | None:
        return None if self.design is None else self.design.execution_latency()

    def to_dict(self, include_solves: bool = False) -> dict:
        """JSON-serializable summary (design as placement table).

        ``include_solves`` forwards to
        :meth:`repro.solve.RunTelemetry.to_dict` — per-solve records are
        verbose, so they are off by default.
        """
        design = None
        if self.design is not None:
            design = {
                name: {
                    "partition": placement.partition,
                    "design_point": placement.design_point.name,
                }
                for name, placement in sorted(self.design.placements.items())
            }
        return {
            "feasible": self.feasible,
            "degraded": self.degraded,
            "total_latency": self.total_latency,
            "execution_latency": self.execution_latency,
            "num_partitions": self.num_partitions,
            "partition_range": [
                self.partition_range.start,
                self.partition_range.stop,
            ],
            "delta": self.delta,
            "stopped_by_min_latency_cut": self.stopped_by_min_latency_cut,
            "stopped_by_time": self.stopped_by_time,
            "iterations": len(self.trace),
            "design": design,
            "telemetry": (
                None
                if self.telemetry is None
                else self.telemetry.to_dict(include_solves=include_solves)
            ),
        }


class TemporalPartitioner:
    """Combined temporal partitioning and design space exploration."""

    def __init__(
        self,
        processor: ReconfigurableProcessor,
        config: PartitionerConfig | None = None,
    ) -> None:
        self.processor = processor
        self.config = config or PartitionerConfig()

    def solve(self, request: PartitionRequest) -> PartitioningOutcome:
        """Canonical entry point: solve one :class:`PartitionRequest`.

        Raises
        ------
        repro.taskgraph.GraphValidationError
            When the graph is structurally unusable (cycles, or a task
            whose smallest design point exceeds the device capacity).
        """
        processor = request.processor or self.processor
        config = request.config or self.config
        if config.validate:
            report = validate_graph(
                request.graph, resource_capacity=processor.resource_capacity
            )
            report.raise_if_failed()
        result: RefinementResult = refine_partitions_bound(
            request.graph,
            processor,
            config=config.search,
            options=config.formulation,
            settings=config.solver,
        )
        prange = bounds.partition_range(
            request.graph,
            processor,
            alpha=config.search.alpha,
            gamma=config.search.gamma,
        )
        return PartitioningOutcome(
            design=result.design,
            total_latency=result.achieved,
            trace=result.trace,
            partition_range=prange,
            delta=result.delta,
            stopped_by_min_latency_cut=result.stopped_by_min_latency_cut,
            stopped_by_time=result.stopped_by_time,
            degraded=result.degraded,
            telemetry=result.telemetry,
        )

    def partition(
        self, graph: TaskGraph | PartitionRequest
    ) -> PartitioningOutcome:
        """Partition a graph (or solve a request) for this processor.

        Kept as the friendly entry point: a bare
        :class:`~repro.taskgraph.graph.TaskGraph` is wrapped in a
        :class:`PartitionRequest` using the partitioner's processor and
        config; a request is forwarded to :meth:`solve` unchanged.
        """
        if isinstance(graph, PartitionRequest):
            return self.solve(graph)
        return self.solve(PartitionRequest(graph=graph))

    def bounds_for(self, graph: TaskGraph, num_partitions: int) -> tuple[float, float]:
        """(D_max, D_min) for ``num_partitions`` — convenience accessor."""
        c_t = self.processor.reconfiguration_time
        return (
            bounds.max_latency(graph, num_partitions, c_t),
            bounds.min_latency(graph, num_partitions, c_t),
        )
