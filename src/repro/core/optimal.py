"""Solve the combined problem to proven optimality (the Table 1 oracle).

The paper validates its iterative procedure by solving small instances
(the AR filter) to optimality with CPLEX and showing both latencies agree;
for the DCT the optimal solve "could not get even a single feasible
solution in the same run time".  This module provides that oracle: the
same ILP with the objective ``min sum(d_p) + C_T * eta`` attached, swept
over a range of partition bounds, with per-solve budgets so the DCT-scale
failure mode can be reproduced rather than suffered.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.arch.processor import ReconfigurableProcessor
from repro.core import bounds
from repro.core.formulation import FormulationOptions, build_model
from repro.core.solution import PartitionedDesign
from repro.ilp import SolveStatus
from repro.taskgraph.graph import TaskGraph

__all__ = ["OptimalAttempt", "OptimalResult", "solve_optimal"]


@dataclass(frozen=True)
class OptimalAttempt:
    """The optimality solve for one partition bound ``N``."""

    num_partitions: int
    status: SolveStatus
    latency: float | None            # incl. reconfiguration overhead
    proven_optimal: bool
    wall_time: float
    solver_iterations: int


@dataclass
class OptimalResult:
    """Best design over all attempted partition bounds."""

    design: PartitionedDesign | None
    latency: float | None
    attempts: list[OptimalAttempt] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return self.design is not None

    @property
    def proven_optimal(self) -> bool:
        """True when every attempted bound finished (optimal or infeasible).

        Only then is the best-over-N value a true optimum for the
        explored range.
        """
        return bool(self.attempts) and all(
            a.proven_optimal or a.status is SolveStatus.INFEASIBLE
            for a in self.attempts
        )


def solve_optimal(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    partition_counts: range | list[int] | None = None,
    options: FormulationOptions | None = None,
    backend: str = "highs",
    time_limit_per_solve: float | None = 120.0,
    node_limit: int | None = None,
) -> OptimalResult:
    """Minimize total latency exactly, over the given partition bounds.

    When ``partition_counts`` is ``None`` the paper's full explored range
    ``[N_min^l, N_min^u]`` is used.  Each bound gets its own ILP because
    the reconfiguration overhead term ``C_T * eta`` makes solutions at
    different ``N`` directly comparable — the best objective over all
    bounds is the overall optimum.
    """
    base_options = options or FormulationOptions()
    opts = FormulationOptions(
        order_mode=base_options.order_mode,
        two_sided_w=base_options.two_sided_w,
        include_env_memory=base_options.include_env_memory,
        path_limit=base_options.path_limit,
        minimize_latency=True,
    )
    if partition_counts is None:
        prange = bounds.partition_range(graph, processor)
        partition_counts = range(prange.lower_bound, prange.upper_seed + 1)

    result = OptimalResult(design=None, latency=None)
    best = math.inf
    for n in partition_counts:
        d_max = bounds.max_latency(
            graph, n, processor.reconfiguration_time
        )
        tp_model = build_model(graph, processor, n, d_max, 0.0, opts)
        start = time.perf_counter()
        solution = tp_model.solve(
            backend=backend,
            time_limit=time_limit_per_solve,
            node_limit=node_limit,
        )
        elapsed = time.perf_counter() - start
        latency: float | None = None
        if solution.status.has_solution:
            design = tp_model.design_from(solution)
            latency = design.total_latency(processor)
            if latency < best:
                best = latency
                result.design = design
                result.latency = latency
        result.attempts.append(
            OptimalAttempt(
                num_partitions=n,
                status=solution.status,
                latency=latency,
                proven_optimal=solution.status is SolveStatus.OPTIMAL,
                wall_time=elapsed,
                solver_iterations=solution.iterations,
            )
        )
    return result
