"""Greedy baseline partitioners.

The paper motivates its ``alpha``/``gamma`` relaxation parameters with a
simple heuristic: "map the least-area design point for each task, pack
greedily, and see how many partitions come out" (Section 3.2.2).  This
module implements that family of list-packing heuristics.  They serve
three roles in the reproduction:

* the baseline the ILP approach is compared against (latency quality),
* the ``alpha``/``gamma`` estimators of the paper,
* a fast primal fallback for enormous graphs where even the iterative
  ILP procedure is too slow.

The greedy walks tasks in topological order and opens a new temporal
partition whenever the next task does not fit the current one (area) or
would violate the memory budget at the new boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.arch.processor import ReconfigurableProcessor
from repro.core.solution import PartitionedDesign, Placement
from repro.taskgraph.designpoint import DesignPoint
from repro.taskgraph.graph import TaskGraph

__all__ = [
    "POLICIES",
    "greedy_partition",
    "heuristic_partition_count",
    "estimate_alpha_gamma",
]


def _min_area(task) -> DesignPoint:
    return min(task.design_points, key=lambda dp: (dp.area, dp.latency))


def _max_area(task) -> DesignPoint:
    return max(task.design_points, key=lambda dp: (dp.area, -dp.latency))


def _min_latency(task) -> DesignPoint:
    return min(task.design_points, key=lambda dp: (dp.latency, dp.area))


def _balanced(task) -> DesignPoint:
    """Middle of the area-sorted design points (median area/latency trade)."""
    ordered = sorted(task.design_points, key=lambda dp: dp.area)
    return ordered[len(ordered) // 2]


#: Selection policies: name -> (task -> design point).
POLICIES: dict[str, Callable] = {
    "min_area": _min_area,
    "max_area": _max_area,
    "min_latency": _min_latency,
    "balanced": _balanced,
}


@dataclass
class GreedyResult:
    """A greedy design plus its feasibility with respect to memory."""

    design: PartitionedDesign
    policy: str
    memory_feasible: bool


def greedy_partition(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    policy: str = "min_area",
    include_env_memory: bool = True,
) -> GreedyResult:
    """Greedy level-packing with a fixed design-point policy.

    Tasks are visited in topological order; each is placed in the current
    partition when (a) its chosen design point fits the remaining area and
    (b) placing it does not exceed the memory budget at the partition's
    boundary; otherwise a new partition opens.  Because placement follows
    a topological order, the temporal-order constraint holds by
    construction.

    Memory feasibility is re-audited on the finished design (boundary
    occupancies depend on later placements too); ``memory_feasible``
    reports the outcome.  Callers needing hard feasibility should fall
    back to the ILP partitioner.
    """
    if policy not in POLICIES:
        raise ValueError(
            f"unknown policy {policy!r}; expected one of {sorted(POLICIES)}"
        )
    select = POLICIES[policy]
    placements: dict[str, Placement] = {}
    current = 1
    area_used = 0.0
    for name in graph.topological_order():
        task = graph.task(name)
        point = select(task)
        if point.area > processor.resource_capacity:
            # Fall back to the smallest implementation for oversized picks.
            point = _min_area(task)
        if area_used + point.area > processor.resource_capacity:
            current += 1
            area_used = 0.0
        placements[name] = Placement(current, point)
        area_used += point.area

    design = PartitionedDesign(graph, placements)
    violations = design.audit(processor, include_env_memory)
    memory_ok = not any(v.kind == "memory" for v in violations)
    return GreedyResult(design=design, policy=policy, memory_feasible=memory_ok)


def heuristic_partition_count(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    policy: str,
) -> int:
    """Partitions the greedy needs under ``policy`` (``N'``/``N''``)."""
    return greedy_partition(graph, processor, policy).design.num_partitions_used


def estimate_alpha_gamma(
    graph: TaskGraph, processor: ReconfigurableProcessor
) -> tuple[int, int]:
    """The paper's heuristic seeding of the relaxation parameters.

    ``alpha = max(0, N' - N_min^l)`` with ``N'`` from min-area packing;
    ``gamma = max(0, N'' - N_min^u)`` with ``N''`` from max-area packing.
    """
    from repro.core import bounds  # local import to avoid a cycle

    n_prime = heuristic_partition_count(graph, processor, "min_area")
    n_double_prime = heuristic_partition_count(graph, processor, "max_area")
    lower = bounds.min_area_partitions(graph, processor.resource_capacity)
    upper = bounds.max_area_partitions(graph, processor.resource_capacity)
    return max(0, n_prime - lower), max(0, n_double_prime - upper)
