"""The paper's contribution: combined temporal partitioning + DSE.

Public entry points:

* :class:`TemporalPartitioner` — the facade most users want,
* :func:`reduce_latency` — Algorithm ``Reduce_Latency`` (Figure 1),
* :func:`refine_partitions_bound` — Algorithm ``Refine_Partitions_Bound``
  (Figure 2),
* :func:`build_model` — the raw ILP formulation (Section 3.2.3),
* :func:`solve_optimal` — the optimality oracle used for Table 1,
* :func:`greedy_partition` / :func:`cp_solve` — baselines and the
  ablation backend,
* bounds of Section 3.1 in :mod:`repro.core.bounds`.
"""

from repro.core.analysis import (
    PartitionUtilization,
    UtilizationReport,
    design_point_histogram,
    utilization_report,
)
from repro.core.bounds import (
    PartitionRange,
    max_area_partitions,
    max_latency,
    min_area_partitions,
    min_latency,
    partition_range,
)
from repro.core.cp_solver import CpStats, cp_solve
from repro.core.diagnose import InfeasibilityReport, diagnose_infeasibility
from repro.core.families import (
    ConstraintFamily,
    ScenarioSpec,
    get_scenario,
    register_scenario,
    scenario_ids,
)
from repro.core.formulation import (
    FormulationOptions,
    ModelTemplate,
    TemporalPartitioningModel,
    build_model,
    extract_design,
)
from repro.core.heuristics import (
    POLICIES,
    estimate_alpha_gamma,
    greedy_partition,
    heuristic_partition_count,
)
from repro.core.optimal import OptimalAttempt, OptimalResult, solve_optimal
from repro.core.partitioner import (
    OUTCOME_SCHEMA_VERSION,
    PartitionerConfig,
    PartitionRequest,
    PartitioningOutcome,
    TemporalPartitioner,
)
from repro.core.reduce_latency import (
    ReduceLatencyResult,
    SolverSettings,
    reduce_latency,
)
from repro.core.refine_partitions import (
    RefinementConfig,
    RefinementResult,
    evaluate_partition_bound,
    partition_bound_window,
    refine_partitions_bound,
)
from repro.core.sensitivity import SensitivityReport, capacity_shadow_prices
from repro.core.solution import (
    ConstraintViolation,
    PartitionedDesign,
    Placement,
)
from repro.core.tradeoff import (
    TradeoffCurve,
    TradeoffPoint,
    partition_latency_curve,
)
from repro.core.trace import IterationRecord, SearchTrace

__all__ = [
    "ConstraintFamily",
    "ConstraintViolation",
    "CpStats",
    "FormulationOptions",
    "InfeasibilityReport",
    "IterationRecord",
    "ModelTemplate",
    "OUTCOME_SCHEMA_VERSION",
    "OptimalAttempt",
    "OptimalResult",
    "POLICIES",
    "PartitionRange",
    "PartitionRequest",
    "PartitionUtilization",
    "PartitionedDesign",
    "PartitionerConfig",
    "PartitioningOutcome",
    "Placement",
    "ReduceLatencyResult",
    "RefinementConfig",
    "RefinementResult",
    "ScenarioSpec",
    "SearchTrace",
    "SensitivityReport",
    "SolverSettings",
    "TemporalPartitioner",
    "TemporalPartitioningModel",
    "TradeoffCurve",
    "TradeoffPoint",
    "UtilizationReport",
    "build_model",
    "capacity_shadow_prices",
    "cp_solve",
    "design_point_histogram",
    "diagnose_infeasibility",
    "estimate_alpha_gamma",
    "evaluate_partition_bound",
    "extract_design",
    "get_scenario",
    "greedy_partition",
    "heuristic_partition_count",
    "max_area_partitions",
    "max_latency",
    "min_area_partitions",
    "min_latency",
    "partition_bound_window",
    "partition_latency_curve",
    "partition_range",
    "reduce_latency",
    "refine_partitions_bound",
    "register_scenario",
    "scenario_ids",
    "solve_optimal",
    "utilization_report",
]
