"""Algorithm ``Refine_Partitions_Bound`` — partition-space exploration.

This is Figure 2 of the paper: the outer loop around
:func:`repro.core.reduce_latency.reduce_latency`.

1. Start at ``N = N_min^l + alpha`` partitions.  While the partition bound
   is infeasible, increase ``N`` by one (the paper's Table 4 shows exactly
   this: 8 partitions infeasible, 9 succeeds).
2. Once a solution exists with latency ``D_a``, relax ``N`` one step at a
   time up to ``N_min^u + gamma``.  Each relaxation first checks the cheap
   cut ``MinLatency(N) >= D_a``: if even the critical path on the fastest
   design points (plus the now-larger reconfiguration overhead) cannot
   beat the incumbent, the search stops — with a large ``C_T`` this fires
   immediately, which is why the paper's large-overhead experiments never
   relax ``N``.
3. Otherwise re-run the latency refinement with the incumbent as the new
   upper bound, keeping the better result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.arch.processor import ReconfigurableProcessor
from repro.core import bounds
from repro.core.formulation import FormulationOptions
from repro.core.reduce_latency import (
    ReduceLatencyResult,
    SolverSettings,
    reduce_latency,
)
from repro.core.solution import PartitionedDesign
from repro.core.trace import SearchTrace
from repro.solve.executor import SolveExecutor
from repro.solve.telemetry import RunTelemetry
from repro.taskgraph.graph import TaskGraph

__all__ = [
    "RefinementConfig",
    "RefinementResult",
    "evaluate_partition_bound",
    "partition_bound_window",
    "refine_partitions_bound",
]


@dataclass(frozen=True)
class RefinementConfig:
    """User parameters of the partition-space search (paper, Section 3.2.2).

    Attributes
    ----------
    alpha:
        *Starting Partition Relaxation* — offset above ``N_min^l`` where
        the search begins.
    gamma:
        *Ending Partition Relaxation* — how far past ``N_min^u`` to keep
        relaxing once solutions exist.
    delta:
        Latency tolerance handed to ``Reduce_Latency``.  When ``None``,
        ``delta_fraction * MaxLatency(N_start)`` is used, following the
        paper's advice to set the tolerance to a small percentage of the
        worst-case latency.
    delta_fraction:
        See ``delta``.
    time_budget:
        Overall wall-clock budget in seconds (the paper's
        ``TimeExpired()`` guard); ``None`` disables it.
    infeasible_escalation_limit:
        Safety net: how many consecutive infeasible partition bounds to
        try past the explored range before giving up (the paper's loop
        has no textual bound; a graph whose smallest design points cannot
        fit the device would loop forever without this).
    """

    alpha: int = 0
    gamma: int = 0
    delta: float | None = None
    delta_fraction: float = 0.02
    time_budget: float | None = None
    infeasible_escalation_limit: int = 64

    def resolve_delta(self, d_max_at_start: float) -> float:
        if self.delta is not None:
            if self.delta <= 0:
                raise ValueError("delta must be positive")
            return self.delta
        return max(self.delta_fraction * d_max_at_start, 1e-9)


@dataclass
class RefinementResult:
    """Outcome of the full combined search."""

    design: PartitionedDesign | None
    achieved: float | None            # total latency incl. reconfiguration
    trace: SearchTrace                # all iterations, all partition bounds
    explored_partitions: tuple[int, ...]
    delta: float
    stopped_by_min_latency_cut: bool = False
    stopped_by_time: bool = False
    #: Some window solve fell back to the greedy heuristics after every
    #: backend exhausted its budget; the result is still valid but may be
    #: weaker than an exhaustive search would have found.
    degraded: bool = False
    #: Execution-layer metrics for the whole run (one shared
    #: :class:`repro.solve.SolveExecutor` serves every window solve).
    telemetry: RunTelemetry | None = None

    @property
    def feasible(self) -> bool:
        return self.design is not None


def partition_bound_window(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    num_partitions: int,
    incumbent: float | None = None,
) -> tuple[float, float]:
    """The latency window one partition bound explores: ``(d_max, d_min)``.

    ``incumbent`` clips the upper edge to the best latency already known
    (the relax phase's window; the sharded service feeds the shared bound
    ``D_a`` through here so workers inherit each other's progress).
    """
    c_t = processor.reconfiguration_time
    d_min = bounds.min_latency(graph, num_partitions, c_t)
    d_max = bounds.max_latency(graph, num_partitions, c_t)
    if incumbent is not None:
        d_max = min(d_max, incumbent)
    return d_max, d_min


def evaluate_partition_bound(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    num_partitions: int,
    d_max: float,
    d_min: float,
    delta: float,
    options: FormulationOptions | None = None,
    settings: SolverSettings | None = None,
    deadline: float | None = None,
    executor: SolveExecutor | None = None,
    should_stop=None,
    phase: str = "shard",
) -> ReduceLatencyResult:
    """One ``Reduce_Latency`` run at a fixed partition bound ``N``.

    This is the body of ``Refine_Partitions_Bound``'s loop, extracted so
    it can run anywhere: the serial driver calls it per escalation /
    relaxation step, and each worker process of the sharded service
    (:mod:`repro.service`) calls it for the one ``N`` it owns.  The
    ``partition_bound`` tracer span and its ``phase`` annotation are
    emitted here, so serial and sharded runs produce the same span
    shape.
    """
    if executor is None:
        executor = SolveExecutor(settings or SolverSettings())
    tracer = executor.tracer
    with tracer.span(
        "partition_bound",
        num_partitions=num_partitions,
        phase=phase,
        d_min=float(d_min),
        d_max=float(d_max),
    ) as sp:
        result = reduce_latency(
            graph,
            processor,
            num_partitions,
            d_max,
            d_min,
            delta,
            options=options,
            settings=settings,
            deadline=deadline,
            executor=executor,
            should_stop=should_stop,
        )
        sp.annotate(feasible=result.feasible, achieved=result.achieved)
    return result


def refine_partitions_bound(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    config: RefinementConfig | None = None,
    options: FormulationOptions | None = None,
    settings: SolverSettings | None = None,
    executor: SolveExecutor | None = None,
) -> RefinementResult:
    """Run Algorithm ``Refine_Partitions_Bound`` (Figure 2).

    One :class:`repro.solve.SolveExecutor` serves every window solve of
    the run, so the solve cache, the model templates (one compiled base
    model per partition bound, window rows patched per iteration) and
    the telemetry span both phases.  Pass ``executor`` to share them
    across runs too (e.g. a warm-cache replay).
    """
    config = config or RefinementConfig()
    options = options or FormulationOptions()
    settings = settings or SolverSettings()
    if executor is None:
        executor = SolveExecutor(settings)
    tracer = executor.tracer
    deadline = (
        time.perf_counter() + config.time_budget
        if config.time_budget is not None
        else None
    )

    def time_expired() -> bool:
        return deadline is not None and time.perf_counter() > deadline

    c_t = processor.reconfiguration_time
    prange = bounds.partition_range(
        graph, processor, alpha=config.alpha, gamma=config.gamma
    )
    n = prange.start
    delta = config.resolve_delta(bounds.max_latency(graph, n, c_t))

    trace = SearchTrace()
    explored: list[int] = []
    degraded = False

    with tracer.span(
        "refine_partitions",
        n_start=prange.start,
        n_stop=prange.stop,
        delta=float(delta),
    ) as root_span:

        def run_reduce(
            num_partitions, d_max, d_min, phase
        ) -> ReduceLatencyResult:
            nonlocal degraded
            result = evaluate_partition_bound(
                graph,
                processor,
                num_partitions,
                d_max,
                d_min,
                delta,
                options=options,
                settings=settings,
                deadline=deadline,
                executor=executor,
                phase=phase,
            )
            trace.extend(result.trace)
            explored.append(num_partitions)
            degraded = degraded or result.degraded
            return result

        # Phase 1: find the first feasible partition bound.
        result = run_reduce(
            n,
            bounds.max_latency(graph, n, c_t),
            bounds.min_latency(graph, n, c_t),
            phase="escalate",
        )
        escalations = 0
        while not result.feasible:
            if time_expired():
                tracer.event("time_budget_expired", phase="escalate")
                root_span.annotate(feasible=False, stopped_by_time=True)
                return RefinementResult(
                    None, None, trace, tuple(explored), delta,
                    stopped_by_time=True,
                    degraded=degraded,
                    telemetry=executor.telemetry,
                )
            escalations += 1
            if escalations > config.infeasible_escalation_limit:
                tracer.event(
                    "escalation_limit_reached", escalations=escalations
                )
                root_span.annotate(feasible=False)
                return RefinementResult(
                    None, None, trace, tuple(explored), delta,
                    degraded=degraded,
                    telemetry=executor.telemetry,
                )
            n += 1
            result = run_reduce(
                n,
                bounds.max_latency(graph, n, c_t),
                bounds.min_latency(graph, n, c_t),
                phase="escalate",
            )

        best_design = result.design
        best_latency = result.achieved
        stopped_by_cut = False
        stopped_by_time = False

        # Phase 2: relax N while better solutions remain possible.
        # Each relaxation opens a window at the incumbent's latency, so
        # with ``SolverSettings.incumbent_reuse`` the carried design
        # usually answers the opening solve outright — this loop is
        # where the cross-window acceleration pays off, not inside the
        # bisections (whose trial windows always undercut the incumbent).
        while n < prange.stop:
            if time_expired():
                tracer.event("time_budget_expired", phase="relax")
                stopped_by_time = True
                break
            n += 1
            d_min = bounds.min_latency(graph, n, c_t)
            if d_min >= best_latency:
                # Even the fastest possible schedule at N partitions loses
                # to the incumbent: no relaxation can help (large-C_T
                # early exit).
                tracer.event(
                    "min_latency_cut",
                    num_partitions=n,
                    min_latency=d_min,
                    incumbent=best_latency,
                )
                stopped_by_cut = True
                break
            result = run_reduce(n, best_latency, d_min, phase="relax")
            if result.feasible and result.achieved < best_latency:
                best_design = result.design
                best_latency = result.achieved

        root_span.annotate(
            feasible=best_design is not None,
            achieved=best_latency,
            explored=len(explored),
            stopped_by_min_latency_cut=stopped_by_cut,
            stopped_by_time=stopped_by_time,
        )
        return RefinementResult(
            design=best_design,
            achieved=best_latency,
            trace=trace,
            explored_partitions=tuple(explored),
            delta=delta,
            stopped_by_min_latency_cut=stopped_by_cut,
            stopped_by_time=stopped_by_time,
            degraded=degraded,
            telemetry=executor.telemetry,
        )
