"""Iteration traces of the search procedures.

The paper reports its results as tables whose *rows are iterations*: each
row shows the partition bound ``N``, the iteration number ``I``, the
latency window ``[D_min, D_max]`` given to the ILP, and either the
achieved latency ``D_a`` or "Inf." (infeasible).  This module captures
exactly that, so the experiment harness can print paper-shaped tables
directly from a search run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["IterationRecord", "SearchTrace"]


@dataclass(frozen=True)
class IterationRecord:
    """One ILP solve inside the iterative search (a table row).

    ``d_max``/``d_min`` are the window handed to the solver **including**
    the reconfiguration overhead; ``achieved`` is the true latency of the
    decoded design (``None`` when the solve was infeasible).
    """

    num_partitions: int
    iteration: int
    d_max: float
    d_min: float
    achieved: float | None
    wall_time: float = 0.0
    solver_iterations: int = 0
    #: Which backend decided this iteration: a solver name, ``"cache"``
    #: for a memoized verdict, ``"heuristic:<policy>"`` for the degraded
    #: fallback, or ``""`` (pre-execution-layer records / hard timeout).
    backend: str = ""
    #: The verdict came from the solve cache (no solver ran).
    cache_hit: bool = False
    #: Every backend exhausted its budget; the row reflects the fallback.
    degraded: bool = False

    @property
    def feasible(self) -> bool:
        return self.achieved is not None

    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {
            "num_partitions": self.num_partitions,
            "iteration": self.iteration,
            "d_max": self.d_max,
            "d_min": self.d_min,
            "achieved": self.achieved,
            "wall_time": self.wall_time,
            "solver_iterations": self.solver_iterations,
            "backend": self.backend,
            "cache_hit": self.cache_hit,
            "degraded": self.degraded,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "IterationRecord":
        return cls(
            num_partitions=int(payload["num_partitions"]),
            iteration=int(payload["iteration"]),
            d_max=float(payload["d_max"]),
            d_min=float(payload["d_min"]),
            achieved=(
                None
                if payload.get("achieved") is None
                else float(payload["achieved"])
            ),
            wall_time=float(payload.get("wall_time", 0.0)),
            solver_iterations=int(payload.get("solver_iterations", 0)),
            backend=str(payload.get("backend", "")),
            cache_hit=bool(payload.get("cache_hit", False)),
            degraded=bool(payload.get("degraded", False)),
        )

    def row(self, reconfiguration_time: float = 0.0) -> tuple:
        """(N, I, D_min, D_max, D_a) with the overhead ``N*C_T`` removed.

        The paper's tables print bounds "without N x C_T"; passing the
        processor's ``C_T`` reproduces that convention.
        """
        overhead = self.num_partitions * reconfiguration_time
        achieved = (
            None if self.achieved is None else self.achieved - overhead
        )
        return (
            self.num_partitions,
            self.iteration,
            self.d_min - overhead,
            self.d_max - overhead,
            achieved,
        )


@dataclass
class SearchTrace:
    """Ordered list of iteration records across the whole search."""

    records: list[IterationRecord] = field(default_factory=list)

    def add(self, record: IterationRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[IterationRecord]) -> None:
        self.records.extend(records)

    def __iter__(self) -> Iterator[IterationRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def total_solves(self) -> int:
        return len(self.records)

    @property
    def total_wall_time(self) -> float:
        return sum(r.wall_time for r in self.records)

    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {"records": [r.to_dict() for r in self.records]}

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchTrace":
        return cls(
            records=[
                IterationRecord.from_dict(r)
                for r in payload.get("records", [])
            ]
        )

    def for_partitions(self, num_partitions: int) -> list[IterationRecord]:
        return [
            r for r in self.records if r.num_partitions == num_partitions
        ]

    def partition_counts(self) -> tuple[int, ...]:
        seen: list[int] = []
        for record in self.records:
            if record.num_partitions not in seen:
                seen.append(record.num_partitions)
        return tuple(seen)

    def best(self) -> IterationRecord | None:
        feasible = [r for r in self.records if r.feasible]
        if not feasible:
            return None
        return min(feasible, key=lambda r: r.achieved)

    def convergence_chart(self, width: int = 60) -> str:
        """ASCII view of the bisection: window per iteration, incumbent.

        One line per record: ``-`` spans the latency window handed to the
        solver, ``*`` marks the achieved latency (``x`` for infeasible
        probes at the window's upper end).  Useful for eyeballing how the
        search narrows — the textual analogue of a convergence plot.
        """
        if not self.records:
            return "(empty trace)"
        low = min(r.d_min for r in self.records)
        high = max(r.d_max for r in self.records)
        span = max(high - low, 1e-12)

        def column(value: float) -> int:
            position = int((value - low) / span * (width - 1))
            return min(max(position, 0), width - 1)

        lines = []
        for record in self.records:
            cells = [" "] * width
            start, end = column(record.d_min), column(record.d_max)
            for i in range(start, end + 1):
                cells[i] = "-"
            if record.feasible:
                cells[column(record.achieved)] = "*"
            else:
                cells[end] = "x"
            label = f"N={record.num_partitions:<3}I={record.iteration:<3}"
            lines.append(f"{label}|{''.join(cells)}|")
        return "\n".join(lines)
