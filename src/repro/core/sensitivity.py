"""LP sensitivity: what would a bigger device buy?

Solving the *linear relaxation* of the minimize-latency model yields dual
values (shadow prices) on the capacity rows: the marginal latency
reduction per extra unit of ``R_max`` in a partition, or per extra unit
of ``M_max``.  The duals are exact for the relaxation and a useful
first-order signal for the integer problem — a partition whose resource
row carries a large dual is the one to target when floorplanning a
bigger FPGA (the paper's R=576 vs R=1024 sweep is exactly such a what-if,
answered there by brute force).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import optimize

from repro.core.formulation import TemporalPartitioningModel
from repro.ilp.expr import Sense
from repro.report import TextTable

__all__ = ["SensitivityReport", "capacity_shadow_prices"]


@dataclass
class SensitivityReport:
    """Shadow prices of the capacity constraints (LP relaxation).

    Prices are in latency units per capacity unit; 0 means the row does
    not bind at the LP optimum.  ``lp_latency`` is the relaxation's
    optimal total latency (a lower bound for the integer problem).
    """

    lp_latency: float
    resource_prices: dict[int, float] = field(default_factory=dict)
    memory_prices: dict[int, float] = field(default_factory=dict)

    @property
    def binding_resource_partitions(self) -> tuple[int, ...]:
        """Partitions whose resource row binds (nonzero dual).

        HiGHS reports duals of binding ``<=`` rows as negative values in
        a minimization, so binding is detected by magnitude.
        """
        return tuple(
            p for p, price in sorted(self.resource_prices.items())
            if abs(price) > 1e-9
        )

    def table(self) -> TextTable:
        table = TextTable(
            "Capacity shadow prices (LP relaxation)",
            ("partition", "d(latency)/d(R_max)", "d(latency)/d(M_max)"),
        )
        partitions = sorted(
            set(self.resource_prices) | set(self.memory_prices)
        )
        for p in partitions:
            table.add_row(
                p,
                round(self.resource_prices.get(p, 0.0), 6),
                round(self.memory_prices.get(p, 0.0), 6),
            )
        table.footer = (
            f"LP latency bound: {self.lp_latency:,.1f} ns; a negative "
            "price means one extra capacity unit lowers the bound by "
            "that much"
        )
        return table


def _row_partition(name: str | None, prefix: str) -> int | None:
    """Extract the partition index from names like ``resource[3]``."""
    if not name or not name.startswith(prefix + "["):
        return None
    try:
        return int(name[len(prefix) + 1 : name.index("]")])
    except ValueError:
        return None


def capacity_shadow_prices(
    tp_model: TemporalPartitioningModel,
) -> SensitivityReport | None:
    """Duals of the resource/memory rows at the LP optimum.

    The model should carry the latency objective
    (``FormulationOptions(minimize_latency=True)``); without an objective
    the duals are all zero and meaningless.  Returns ``None`` when the LP
    relaxation is infeasible or unbounded.
    """
    model = tp_model.model
    form = model.to_standard_form()

    # Rebuild the <=-row order exactly as StandardForm does, so dual
    # positions can be mapped back to constraint names.
    ub_names: list[str | None] = []
    for constr in model.constraints:
        if constr.sense in (Sense.LE, Sense.GE):
            ub_names.append(constr.name)

    result = optimize.linprog(
        c=form.c,
        A_ub=form.a_ub if form.a_ub.shape[0] else None,
        b_ub=form.b_ub if form.a_ub.shape[0] else None,
        A_eq=form.a_eq if form.a_eq.shape[0] else None,
        b_eq=form.b_eq if form.a_eq.shape[0] else None,
        bounds=np.column_stack([form.lb, form.ub]),
        method="highs",
    )
    if result.status != 0:
        return None
    marginals = np.asarray(result.ineqlin.marginals)

    report = SensitivityReport(lp_latency=float(result.fun) + form.c0)
    for name, dual in zip(ub_names, marginals):
        partition = _row_partition(name, "resource")
        if partition is not None:
            report.resource_prices[partition] = float(dual)
            continue
        partition = _row_partition(name, "memory")
        if partition is not None:
            report.memory_prices[partition] = float(dual)
    return report
