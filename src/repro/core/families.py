"""Registered constraint families and scenario specifications.

The formulation of Section 3.2.3 used to live in one monolithic
builder; it is now assembled from self-describing
:class:`ConstraintFamily` builders listed by a :class:`ScenarioSpec`.
Each family declares

* its **id** (the row-group key in the compiled provenance, see
  :class:`repro.ilp.compile.RowGroup`),
* the **paper-equation tags** of the rows it emits (the analyzer's
  conformance pass and the equation-prefix map both derive from these
  instead of a parallel hand-written list),
* its **build** function, which appends variables/rows to the shared
  :class:`BuildContext`,
* whether it is **window-dependent** (its right-hand sides change
  between bisection windows; the registry enforces that exactly one
  such family exists per scenario and that it comes last, so the
  template layer can patch/drop its rows without disturbing any other
  family's span),
* which analyzer **conformance** checker certifies it (a checker id
  resolved in :mod:`repro.analysis.conformance`; the tags the checker
  emits come from the family, keeping one source of truth), and
* whether its rows are **cover-cuttable** (positive-coefficient binary
  knapsack rows the cut separator of :mod:`repro.ilp.cuts` may derive
  cover inequalities from).

Two scenarios ship:

``paper_oneshot``
    The paper's formulation (1)-(10), bit-identical to the
    pre-registry monolith (golden fingerprints in
    ``tests/golden/paper_oneshot_identity.json`` prove it).

``slot_coresident``
    A lite slotted partial-reconfiguration variant (ROADMAP item 5):
    the device holds ``num_slots`` reconfigurable slots, partition
    ``p`` occupies slot ``(p - 1) mod num_slots``, and a producer's
    output buffer lives in its slot until the slot is reconfigured
    ``num_slots`` steps later — crossings between co-resident slots
    are free.  Reconfiguring one slot costs a fraction of the full
    ``C_T`` (``slot_reconfiguration_time``, default
    ``C_T / num_slots``) and each slot offers ``R_max / num_slots``
    area.  Temporal order (2) is unchanged in the lite model —
    precedence is by step index; co-residency affects buffering and
    capacity, not order.  With ``num_slots = 1`` the scenario reduces
    exactly to ``paper_oneshot``.

Register further scenarios with :func:`register_scenario`; see
``docs/formulation.md`` for a walk-through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.ilp import Model, VarType, lin_sum
from repro.ilp.expr import Sense
from repro.ilp.compile import RowGroup
from repro.taskgraph.paths import count_paths, enumerate_paths

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.arch.processor import ReconfigurableProcessor
    from repro.core.formulation import FormulationOptions
    from repro.taskgraph.graph import TaskGraph

__all__ = [
    "BuildContext",
    "ConstraintFamily",
    "ScenarioSpec",
    "get_scenario",
    "interchangeable_groups",
    "register_scenario",
    "scenario_ids",
]


def interchangeable_groups(graph: "TaskGraph") -> list[tuple[str, ...]]:
    """Partition tasks into groups that any solution may permute freely.

    Two tasks are interchangeable when they have identical design-point
    tuples, the same predecessor and successor sets with the same data
    volumes, and the same environment I/O.  Swapping two such tasks maps
    any feasible partitioned design onto another feasible design with the
    same latency, so ordering them by partition index loses nothing.
    Only groups of size >= 2 are returned, in deterministic task order.
    """
    signatures: dict[tuple, list[str]] = {}
    for task in graph:
        signature = (
            tuple(
                (dp.area, dp.latency, dp.extra_resources)
                for dp in task.design_points
            ),
            tuple(
                sorted(
                    (pred, graph.data_volume(pred, task.name))
                    for pred in graph.predecessors(task.name)
                )
            ),
            tuple(
                sorted(
                    (succ, graph.data_volume(task.name, succ))
                    for succ in graph.successors(task.name)
                )
            ),
            graph.env_input(task.name),
            graph.env_output(task.name),
        )
        signatures.setdefault(signature, []).append(task.name)
    groups = [
        tuple(names) for names in signatures.values() if len(names) >= 2
    ]
    # Tasks that appear in each other's neighbor signatures are never
    # grouped together (their signatures differ), so the ordering
    # constraints below cannot conflict with the temporal order.
    return groups


def _y_name(task: str, partition: int, dp_index: int) -> str:
    return f"Y[{task},{partition},{dp_index}]"


def _w_name(partition: int, src: str, dst: str) -> str:
    return f"w[{partition},{src},{dst}]"


@dataclass
class BuildContext:
    """Shared state the family builders append to.

    Created once per :func:`repro.core.formulation._populate_ilp` call;
    the assignment family fills the variable maps (``y`` / ``d`` /
    ``eta``), subsequent families add rows.  Scenario ``prepare`` hooks
    may adjust the derived fields (``resource_capacity``,
    ``extra_capacities``, ``reconfiguration_cost``, ``num_slots``)
    before any family builds — the paper scenario leaves the processor
    values untouched.
    """

    graph: "TaskGraph"
    processor: "ReconfigurableProcessor"
    num_partitions: int
    options: "FormulationOptions"
    model: Model
    d_max: float
    d_min: float
    #: Add the ``latency_lb`` row even when ``d_min == 0`` (the template
    #: path needs both window shapes present so either can be patched).
    include_lb: bool = False
    #: Resolved scenario parameters (defaults merged with
    #: ``options.scenario_params``).
    params: Mapping[str, float] = field(default_factory=dict)
    # -- filled by the assignment family -------------------------------------
    y: dict[tuple[str, int, int], object] = field(default_factory=dict)
    y_name: dict[tuple[str, int, int], str] = field(default_factory=dict)
    d: dict[int, object] = field(default_factory=dict)
    d_name: dict[int, str] = field(default_factory=dict)
    eta: object | None = None
    d_cap: float = 0.0
    w: dict[tuple[int, str, str], object] = field(default_factory=dict)
    # -- scenario-adjustable device view --------------------------------------
    resource_capacity: float = 0.0
    extra_capacities: tuple[tuple[str, float], ...] = ()
    reconfiguration_cost: float = 0.0
    #: Steps a producer's slot stays resident: a value crossing from
    #: partition ``a`` needs buffer memory at step ``p`` only when
    #: ``a + num_slots <= p`` (the producer's slot has been evicted).
    #: 1 in the paper scenario (every step reconfigures the whole
    #: device).
    num_slots: int = 1

    def __post_init__(self) -> None:
        self.resource_capacity = self.processor.resource_capacity
        self.extra_capacities = tuple(self.processor.extra_capacities)
        self.reconfiguration_cost = self.processor.reconfiguration_time

    @property
    def partitions(self) -> range:
        return range(1, self.num_partitions + 1)

    def param(self, key: str, default: float) -> float:
        return float(self.params.get(key, default))

    def y_sum(self, task: str, parts, dp_indices=None):
        count = len(self.graph.task(task).design_points)
        indices = dp_indices or range(1, count + 1)
        return lin_sum(
            self.y[(task, p, k)] for p in parts for k in indices
        )

    def task_index(self, task: str):
        """``sum p * Y[task,p,k]`` — the task's partition index."""
        return lin_sum(
            p * self.y[(task, p, k)]
            for p in self.partitions
            for k in range(
                1, len(self.graph.task(task).design_points) + 1
            )
        )

    def total_latency_expr(self):
        """``sum(d_p) + reconfiguration_cost * eta`` (equations (9)-(10))."""
        return (
            lin_sum(self.d.values()) + self.reconfiguration_cost * self.eta
        )


@dataclass(frozen=True)
class ConstraintFamily:
    """One self-describing constraint-family builder.

    ``paper_eq`` lists the equation tags of the rows the family emits
    (most families carry one; the latency window carries ``(9)`` and
    ``(10)``).  ``equation_prefixes`` maps the family's row/column name
    prefixes to tags for the analyzer's name-based tagging
    (:func:`repro.analysis.diagnostics.paper_equation_for`).
    ``conformance`` names the analyzer checker that certifies the
    family (``None`` for families without a conformance pass).
    """

    id: str
    build: Callable[[BuildContext], None]
    paper_eq: tuple[str, ...] = ()
    equation_prefixes: tuple[tuple[str, str], ...] = ()
    window_dependent: bool = False
    conformance: str | None = None
    cover_cuttable: bool = False
    description: str = ""


@dataclass(frozen=True)
class ScenarioSpec:
    """An ordered family composition plus its objective builder.

    ``families`` build in order (row-group spans follow from it);
    ``prepare`` may adjust the :class:`BuildContext`'s device view
    before any family runs; ``objective`` returns the expression
    attached when :attr:`FormulationOptions.minimize_latency` is set.
    ``params`` are the scenario's default parameters, overridable per
    request through :attr:`FormulationOptions.scenario_params`.
    """

    id: str
    description: str
    families: tuple[ConstraintFamily, ...]
    objective: Callable[[BuildContext], object] | None = None
    prepare: Callable[[BuildContext], None] | None = None
    params: Mapping[str, float] = field(default_factory=dict)

    @property
    def window_family(self) -> ConstraintFamily:
        return self.families[-1]

    def family(self, family_id: str) -> ConstraintFamily:
        for fam in self.families:
            if fam.id == family_id:
                return fam
        raise KeyError(family_id)

    def resolved_params(
        self, options: "FormulationOptions | None" = None
    ) -> dict[str, float]:
        """Scenario defaults merged with the request's overrides."""
        merged = {str(k): float(v) for k, v in dict(self.params).items()}
        if options is not None:
            merged.update(
                {str(k): float(v) for k, v in options.scenario_params}
            )
        return merged

    def num_slots(self, options: "FormulationOptions | None" = None) -> int:
        """Resident-slot count (1 for whole-device reconfiguration)."""
        return int(self.resolved_params(options).get("num_slots", 1))


# -- registry ------------------------------------------------------------------

_SCENARIOS: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Register a scenario; validates the family composition.

    Exactly one family must be window-dependent and it must come
    *last*: the template layer drops or patches the trailing window
    rows of the compiled form (see
    :meth:`repro.core.formulation.ModelTemplate.instantiate`), which is
    only sound when no other family's rows follow them.
    """
    if spec.id in _SCENARIOS:
        raise ValueError(f"scenario {spec.id!r} is already registered")
    seen: set[str] = set()
    for fam in spec.families:
        if fam.id in seen:
            raise ValueError(
                f"scenario {spec.id!r} lists family {fam.id!r} twice"
            )
        seen.add(fam.id)
    window = [fam for fam in spec.families if fam.window_dependent]
    if len(window) != 1:
        raise ValueError(
            f"scenario {spec.id!r} must declare exactly one "
            f"window-dependent family, found {len(window)}"
        )
    if spec.families[-1] is not window[0]:
        raise ValueError(
            f"scenario {spec.id!r}: the window-dependent family "
            f"{window[0].id!r} must be the last family"
        )
    _SCENARIOS[spec.id] = spec
    return spec


def get_scenario(scenario_id: str) -> ScenarioSpec:
    try:
        return _SCENARIOS[scenario_id]
    except KeyError:
        known = ", ".join(sorted(_SCENARIOS))
        raise ValueError(
            f"unknown scenario {scenario_id!r}; registered: {known}"
        ) from None


def scenario_ids() -> tuple[str, ...]:
    return tuple(sorted(_SCENARIOS))


# -- family builders -----------------------------------------------------------
#
# The paper scenario's builders are the monolith's blocks, extracted
# verbatim; insertion order of variables and rows is part of the
# contract (golden compiled-array fingerprints pin it).  The builders
# are generic over the context's device view and ``num_slots``, so the
# slot scenario reuses most of them with different context values.


def _build_assignment(ctx: BuildContext) -> None:
    """Decision variables ``Y`` / ``d_p`` / ``eta`` (no rows)."""
    for task in ctx.graph:
        for p in ctx.partitions:
            for k, _dp in enumerate(task.design_points, start=1):
                name = _y_name(task.name, p, k)
                ctx.y[(task.name, p, k)] = ctx.model.add_binary(name)
                ctx.y_name[(task.name, p, k)] = name
    # The slowest serial schedule bounds any d_p from above; a finite
    # upper bound keeps the LP relaxations bounded in feasibility mode.
    ctx.d_cap = ctx.graph.total_max_latency()
    for p in ctx.partitions:
        ctx.d[p] = ctx.model.add_var(f"d[{p}]", lb=0.0, ub=ctx.d_cap)
        ctx.d_name[p] = f"d[{p}]"
    ctx.eta = ctx.model.add_var(
        "eta", lb=1, ub=ctx.num_partitions, vtype=VarType.INTEGER
    )


def _build_uniqueness(ctx: BuildContext) -> None:
    """Equation (1): every task placed exactly once."""
    for task in ctx.graph:
        ctx.model.add_constr(
            ctx.y_sum(task.name, ctx.partitions) == 1,
            name=f"uniq[{task.name}]",
        )


def _build_order(ctx: BuildContext) -> None:
    """Equation (2): producers never after consumers."""
    n = ctx.num_partitions
    if ctx.options.order_mode == "pairwise":
        # t2 in partition p forbids t1 in any later partition.
        for src, dst, _volume in ctx.graph.edges:
            for p in ctx.partitions:
                if p == n:
                    continue  # no later partition exists
                ctx.model.add_constr(
                    ctx.y_sum(dst, [p])
                    + ctx.y_sum(src, range(p + 1, n + 1))
                    <= 1,
                    name=f"order[{src},{dst},{p}]",
                )
    else:
        for src, dst, _volume in ctx.graph.edges:
            ctx.model.add_constr(
                ctx.task_index(src) <= ctx.task_index(dst),
                name=f"order[{src},{dst}]",
            )


def _build_crossing(ctx: BuildContext) -> None:
    """Equations (4)-(5): crossing indicators, slot-aware.

    ``w[p,src,dst] = 1`` when the edge's data needs buffer memory at
    step ``p``: the producer ran early enough that its slot has been
    reconfigured (``partition(src) <= p - num_slots``) while the
    consumer has not run yet (``partition(dst) >= p``).  With
    ``num_slots = 1`` this is exactly the paper's producer-before /
    consumer-at-or-after product.
    """
    n = ctx.num_partitions
    resident = ctx.num_slots
    for p in range(1 + resident, n + 1):
        for src, dst, _volume in ctx.graph.edges:
            name = _w_name(p, src, dst)
            var = ctx.model.add_binary(name)
            ctx.w[(p, src, dst)] = var
            before = ctx.y_sum(src, range(1, p - resident + 1))
            at_or_after = ctx.y_sum(dst, range(p, n + 1))
            ctx.model.add_constr(
                var >= before + at_or_after - 1, name=f"{name}_ge"
            )
            if ctx.options.two_sided_w:
                ctx.model.add_constr(var <= before, name=f"{name}_le_src")
                ctx.model.add_constr(
                    var <= at_or_after, name=f"{name}_le_dst"
                )


def _build_memory(ctx: BuildContext) -> None:
    """Equation (3): buffered data per step within ``M_max``."""
    n = ctx.num_partitions
    resident = ctx.num_slots
    for p in ctx.partitions:
        terms = []
        for src, dst, volume in ctx.graph.edges:
            if p > resident and volume:
                terms.append(volume * ctx.w[(p, src, dst)])
        if ctx.options.include_env_memory:
            for task_name, volume in ctx.graph.env_inputs.items():
                if volume:
                    terms.append(
                        volume * ctx.y_sum(task_name, range(p, n + 1))
                    )
            for task_name, volume in ctx.graph.env_outputs.items():
                if volume and p > resident:
                    terms.append(
                        volume
                        * ctx.y_sum(task_name, range(1, p - resident + 1))
                    )
        if terms:
            ctx.model.add_constr(
                lin_sum(terms) <= ctx.processor.memory_capacity,
                name=f"memory[{p}]",
            )


def _build_resource(ctx: BuildContext) -> None:
    """Equation (6): per-step area within the context's capacity."""
    for p in ctx.partitions:
        usage = lin_sum(
            task.design_points[k - 1].area * ctx.y[(task.name, p, k)]
            for task in ctx.graph
            for k in range(1, len(task.design_points) + 1)
        )
        ctx.model.add_constr(
            usage <= ctx.resource_capacity, name=f"resource[{p}]"
        )
    # Additional resource types ("similar equations can be added if
    # multiple resource types exist in the FPGA", Section 3.2.3).
    for kind, capacity in ctx.extra_capacities:
        for p in ctx.partitions:
            usage = lin_sum(
                task.design_points[k - 1].resource_usage(kind)
                * ctx.y[(task.name, p, k)]
                for task in ctx.graph
                for k in range(1, len(task.design_points) + 1)
            )
            if usage.terms:
                ctx.model.add_constr(
                    usage <= capacity, name=f"resource_{kind}[{p}]"
                )


def _build_partition_latency(ctx: BuildContext) -> None:
    """Equation (7): ``d_p`` dominates every path's load in ``p``."""
    graph, model, options = ctx.graph, ctx.model, ctx.options
    partitions, d = ctx.partitions, ctx.d
    latency_mode = options.latency_mode
    if latency_mode == "auto":
        latency_mode = (
            "paths"
            if count_paths(graph) <= options.path_limit
            else "levels"
        )
    if latency_mode == "paths":
        paths = enumerate_paths(graph, limit=options.path_limit)
        for index, path in enumerate(paths):
            for p in partitions:
                load = lin_sum(
                    graph.task(t).design_points[k - 1].latency
                    * ctx.y[(t, p, k)]
                    for t in path
                    for k in range(
                        1, len(graph.task(t).design_points) + 1
                    )
                )
                model.add_constr(
                    load <= d[p], name=f"pathlat[{index},{p}]"
                )
    else:
        # Start-time big-M encoding: polynomial in |T| + |E| regardless
        # of the number of paths.  s[t] is the task's start offset within
        # its own partition; an edge inside one partition forces the
        # consumer after the producer; d_p dominates every member's
        # finish time.  Exact on integer points, weaker as an LP.
        big_m = ctx.d_cap

        def duration(t: str):
            task = graph.task(t)
            return lin_sum(
                task.design_points[k - 1].latency * ctx.y[(t, p, k)]
                for p in partitions
                for k in range(1, len(task.design_points) + 1)
            )

        s = {
            task.name: model.add_var(
                f"s[{task.name}]", lb=0.0, ub=ctx.d_cap
            )
            for task in graph
        }
        for src, dst, _volume in graph.edges:
            same = model.add_var(f"same[{src},{dst}]", lb=0.0, ub=1.0)
            for p in partitions:
                model.add_constr(
                    same >= ctx.y_sum(src, [p]) + ctx.y_sum(dst, [p]) - 1,
                    name=f"same[{src},{dst},{p}]",
                )
            model.add_constr(
                s[dst] >= s[src] + duration(src) - big_m * (1 - same),
                name=f"prec[{src},{dst}]",
            )
        for task in graph:
            for p in partitions:
                model.add_constr(
                    d[p]
                    >= s[task.name]
                    + duration(task.name)
                    - big_m * (1 - ctx.y_sum(task.name, [p])),
                    name=f"finish[{task.name},{p}]",
                )


def _build_eta(ctx: BuildContext) -> None:
    """Equation (8): ``eta`` counts the partitions actually used."""
    # Valid inequality: every used partition holds at most the step
    # capacity of area, so eta * capacity bounds the total area of the
    # chosen design points.  The cut removes no integer solution but
    # stops the LP relaxation from pretending one reconfiguration
    # suffices, which makes the LP latency bound useful in the large-C_T
    # regime.
    total_area = lin_sum(
        task.design_points[k - 1].area * ctx.y[(task.name, p, k)]
        for task in ctx.graph
        for p in ctx.partitions
        for k in range(1, len(task.design_points) + 1)
    )
    ctx.model.add_constr(
        ctx.resource_capacity * ctx.eta >= total_area,
        name="eta_area_cut",
    )
    for sink in ctx.graph.sinks():
        ctx.model.add_constr(
            ctx.eta >= ctx.task_index(sink), name=f"eta[{sink}]"
        )


def _build_symmetry(ctx: BuildContext) -> None:
    """Extension: order interchangeable tasks by partition index."""
    if not ctx.options.symmetry_breaking:
        return
    for group in interchangeable_groups(ctx.graph):
        for first, second in zip(group, group[1:]):
            ctx.model.add_constr(
                ctx.task_index(first) <= ctx.task_index(second),
                name=f"sym[{first},{second}]",
            )


def _build_latency_window(ctx: BuildContext) -> None:
    """Equations (9)-(10): the two-sided total-latency window.

    The only window-dependent family: its right-hand sides are the
    search's bisection bounds.  Row names are fixed
    (``latency_ub`` / ``latency_lb``) across scenarios — the solve
    cache's window fields and :meth:`Model.set_rhs` sync rely on them.
    """
    total_latency = ctx.total_latency_expr()
    ctx.model.add_constr(total_latency <= ctx.d_max, name="latency_ub")
    if ctx.include_lb or ctx.d_min > 0:
        ctx.model.add_constr(total_latency >= ctx.d_min, name="latency_lb")


def _objective_total_latency(ctx: BuildContext):
    """``min sum(d_p) + reconfiguration_cost * eta``."""
    return ctx.total_latency_expr()


# -- scenario assembly -----------------------------------------------------------

_ASSIGNMENT = ConstraintFamily(
    id="assignment",
    build=_build_assignment,
    paper_eq=("(1)-(2)",),
    equation_prefixes=(("Y[", "(1)-(2)"),),
    description="decision variables Y / d_p / eta",
)

_UNIQUENESS = ConstraintFamily(
    id="uniqueness",
    build=_build_uniqueness,
    paper_eq=("(1)",),
    equation_prefixes=(("uniq[", "(1)"),),
    conformance="uniqueness",
    description="every task placed exactly once",
)

_ORDER = ConstraintFamily(
    id="order",
    build=_build_order,
    paper_eq=("(2)",),
    equation_prefixes=(("order[", "(2)"),),
    description="temporal order along every edge",
)

_PARTITION_LATENCY = ConstraintFamily(
    id="partition_latency",
    build=_build_partition_latency,
    paper_eq=("(7)",),
    equation_prefixes=(
        ("pathlat[", "(7)"),
        ("prec[", "(7)"),
        ("finish[", "(7)"),
        ("same[", "(7)"),
        ("s[", "(7)"),
        ("d[", "(7)"),
    ),
    description="per-partition latency d_p",
)

_SYMMETRY = ConstraintFamily(
    id="symmetry",
    build=_build_symmetry,
    paper_eq=("ext",),
    # sym[...] rows intentionally contribute no prefix: they are an
    # extension with no paper equation (paper_equation_for -> None).
    conformance="symmetry",
    description="interchangeable-task ordering (extension)",
)


def _crossing_family(family_id: str, tag: str) -> ConstraintFamily:
    return ConstraintFamily(
        id=family_id,
        build=_build_crossing,
        paper_eq=(tag,),
        equation_prefixes=(("w[", tag),),
        conformance="crossing",
        description="crossing-indicator linearization",
    )


def _memory_family(family_id: str, tag: str) -> ConstraintFamily:
    return ConstraintFamily(
        id=family_id,
        build=_build_memory,
        paper_eq=(tag,),
        equation_prefixes=(("memory[", tag),),
        description="buffered-data memory capacity",
    )


def _resource_family(family_id: str, tag: str) -> ConstraintFamily:
    return ConstraintFamily(
        id=family_id,
        build=_build_resource,
        paper_eq=(tag,),
        equation_prefixes=(("resource", tag),),
        conformance="resource",
        cover_cuttable=True,
        description="per-step area capacity",
    )


def _eta_family(family_id: str, tag: str) -> ConstraintFamily:
    return ConstraintFamily(
        id=family_id,
        build=_build_eta,
        paper_eq=(tag,),
        equation_prefixes=(
            ("eta_area_cut", tag),
            ("eta[", tag),
            ("eta", tag),
        ),
        conformance="eta",
        description="partition-count coupling",
    )


def _window_family(
    family_id: str, ub_tag: str, lb_tag: str
) -> ConstraintFamily:
    return ConstraintFamily(
        id=family_id,
        build=_build_latency_window,
        paper_eq=(ub_tag, lb_tag),
        equation_prefixes=(
            ("latency_ub", ub_tag),
            ("latency_lb", lb_tag),
        ),
        window_dependent=True,
        conformance="latency_window",
        description="two-sided total-latency window",
    )


PAPER_ONESHOT = register_scenario(
    ScenarioSpec(
        id="paper_oneshot",
        description=(
            "the paper's formulation (1)-(10): whole-device "
            "reconfiguration, one partition resident at a time"
        ),
        families=(
            _ASSIGNMENT,
            _UNIQUENESS,
            _ORDER,
            _crossing_family("crossing", "(4)-(5)"),
            _memory_family("memory", "(3)"),
            _resource_family("resource", "(6)"),
            _PARTITION_LATENCY,
            _eta_family("eta", "(8)"),
            _SYMMETRY,
            _window_family("latency_window", "(9)", "(10)"),
        ),
        objective=_objective_total_latency,
    )
)


def _prepare_slots(ctx: BuildContext) -> None:
    slots = int(ctx.param("num_slots", 2))
    if slots < 1:
        raise ValueError(f"num_slots must be >= 1, got {slots}")
    ctx.num_slots = slots
    ctx.resource_capacity = ctx.processor.resource_capacity / slots
    ctx.extra_capacities = tuple(
        (kind, capacity / slots)
        for kind, capacity in ctx.processor.extra_capacities
    )
    ctx.reconfiguration_cost = ctx.param(
        "slot_reconfiguration_time",
        ctx.processor.reconfiguration_time / slots,
    )


SLOT_CORESIDENT = register_scenario(
    ScenarioSpec(
        id="slot_coresident",
        description=(
            "lite slotted partial reconfiguration: num_slots "
            "co-resident slots, per-slot area and reconfiguration "
            "cost, free crossings between co-resident slots"
        ),
        families=(
            _ASSIGNMENT,
            _UNIQUENESS,
            _ORDER,
            _crossing_family("slot_crossing", "(4s)-(5s)"),
            _memory_family("slot_memory", "(3s)"),
            _resource_family("slot_resource", "(6s)"),
            _PARTITION_LATENCY,
            _eta_family("slot_eta", "(8s)"),
            _SYMMETRY,
            _window_family("slot_window", "(9s)", "(10s)"),
        ),
        objective=_objective_total_latency,
        prepare=_prepare_slots,
        params={"num_slots": 2.0},
    )
)


def build_scenario(
    scenario: ScenarioSpec, ctx: BuildContext
) -> tuple[RowGroup, ...]:
    """Run every family builder, recording row-group provenance.

    Families build sequentially, so each one's rows are contiguous
    within the compiled inequality and equality blocks (the compiler
    splits ``<=``/``>=`` rows from ``==`` rows but preserves insertion
    order inside each block, see
    :func:`repro.ilp.compile.compile_model`).
    """
    if scenario.prepare is not None:
        scenario.prepare(ctx)
    groups: list[RowGroup] = []
    ub_count = eq_count = 0
    start = 0
    for family in scenario.families:
        family.build(ctx)
        constraints = ctx.model.constraints
        added_eq = sum(
            1
            for constr in constraints[start:]
            if constr.sense is Sense.EQ
        )
        added_ub = len(constraints) - start - added_eq
        groups.append(
            RowGroup(
                family=family.id,
                ub_start=ub_count,
                ub_stop=ub_count + added_ub,
                eq_start=eq_count,
                eq_stop=eq_count + added_eq,
            )
        )
        ub_count += added_ub
        eq_count += added_eq
        start = len(constraints)
    if scenario.objective is not None and ctx.options.minimize_latency:
        ctx.model.set_objective(scenario.objective(ctx))
    return tuple(groups)
