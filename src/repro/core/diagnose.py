"""Infeasibility diagnosis for temporal-partitioning models.

When ``SolveModel()`` reports infeasible, the paper's algorithms react
(raise ``D_min``, escalate ``N``) but a *user* usually wants to know
**why** a configuration has no solution: not enough area?  too little
memory?  a latency window below what the device can reach?

:func:`diagnose_infeasibility` answers that by relaxation probing: each
constraint *family* of the formulation (resource, memory, latency window,
temporal order) is dropped in turn and the LP relaxation re-solved.  A
family whose removal restores feasibility is a *culprit*.  LP relaxations
keep the probe cheap: LP-feasible ⊇ ILP-feasible, so

* an LP-infeasible reduced model proves the remaining families alone
  are contradictory, and
* culprit sets are reported with that caveat (`certain=False` when only
  the integer model is infeasible, i.e. the full LP was feasible).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.formulation import TemporalPartitioningModel
from repro.ilp.model import Model
from repro.ilp.scipy_backend import solve_relaxation
from repro.ilp.status import SolveStatus

__all__ = ["InfeasibilityReport", "diagnose_infeasibility"]

#: Constraint-name prefixes of each relaxable family.
_FAMILIES: dict[str, tuple[str, ...]] = {
    "resource": ("resource", "eta_area_cut"),
    "memory": ("memory",),
    "latency_window": ("latency_ub", "latency_lb"),
    "order": ("order", "w["),
}


@dataclass
class InfeasibilityReport:
    """Outcome of :func:`diagnose_infeasibility`."""

    lp_infeasible: bool
    culprits: list[str] = field(default_factory=list)
    detail: dict[str, bool] = field(default_factory=dict)
    certain: bool = True

    @property
    def message(self) -> str:
        if not self.lp_infeasible:
            return (
                "the LP relaxation is feasible; infeasibility stems from "
                "integrality (packing/fragmentation), not from any single "
                "constraint family"
            )
        if not self.culprits:
            return (
                "no single constraint family explains the infeasibility; "
                "at least two families conflict jointly"
            )
        families = ", ".join(self.culprits)
        return f"removing any of [{families}] restores LP feasibility"


def _without_families(model: Model, prefixes: tuple[str, ...]) -> Model:
    """Copy ``model`` minus constraints whose names match any prefix."""
    reduced = Model(f"{model.name}_minus_{prefixes[0]}")
    mapping = {}
    for var in model.variables:
        mapping[var.name] = reduced.add_var(
            var.name, lb=var.lb, ub=var.ub, vtype=var.vtype
        )
    from repro.ilp.expr import LinExpr, Sense

    for constr in model.constraints:
        name = constr.name or ""
        if any(name.startswith(prefix) for prefix in prefixes):
            continue
        expr = LinExpr(
            {mapping[v.name]: c for v, c in constr.expr.terms.items()}
        )
        if constr.sense is Sense.LE:
            reduced.add_constr(expr <= constr.rhs, name=constr.name)
        elif constr.sense is Sense.GE:
            reduced.add_constr(expr >= constr.rhs, name=constr.name)
        else:
            reduced.add_constr(expr == constr.rhs, name=constr.name)
    return reduced


def _lp_feasible(model: Model) -> bool:
    form = model.to_standard_form()
    status, _x, _obj, _n = solve_relaxation(form)
    return status is SolveStatus.OPTIMAL or status is SolveStatus.UNBOUNDED


def diagnose_infeasibility(
    tp_model: TemporalPartitioningModel,
) -> InfeasibilityReport:
    """Explain why a temporal-partitioning model has no solution.

    Call after a solve returned ``INFEASIBLE``.  Returns which constraint
    families, when individually removed, make the *LP relaxation*
    feasible again.  When the full LP is already feasible the integer
    model fails on packing/integrality and the report says so
    (``certain=False`` culprit attribution is impossible by relaxation).
    """
    model = tp_model.model
    if _lp_feasible(model):
        return InfeasibilityReport(lp_infeasible=False, certain=False)

    culprits: list[str] = []
    detail: dict[str, bool] = {}
    for family, prefixes in _FAMILIES.items():
        reduced = _without_families(model, prefixes)
        restored = _lp_feasible(reduced)
        detail[family] = restored
        if restored:
            culprits.append(family)
    return InfeasibilityReport(
        lp_infeasible=True, culprits=culprits, detail=detail
    )
