"""Post-partitioning analysis: utilization, slack, and bottlenecks.

After the search returns a :class:`PartitionedDesign`, designers want to
know *where the budget went*: which partition saturates the device,
whether memory or area binds, which tasks were downgraded to slow design
points, and how much latency a bigger device would buy.  This module
computes those reports from a finished design — no solver involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.processor import ReconfigurableProcessor
from repro.core.solution import PartitionedDesign
from repro.report import TextTable

__all__ = [
    "PartitionUtilization",
    "UtilizationReport",
    "utilization_report",
    "design_point_histogram",
]


@dataclass(frozen=True)
class PartitionUtilization:
    """Resource picture of one temporal partition."""

    partition: int
    tasks: int
    area_used: float
    area_fraction: float
    latency: float
    latency_fraction: float       # of total execution latency
    memory_at_boundary: float
    memory_fraction: float

    @property
    def is_area_saturated(self) -> bool:
        return self.area_fraction >= 0.95


@dataclass
class UtilizationReport:
    """Whole-design utilization summary."""

    partitions: list[PartitionUtilization] = field(default_factory=list)
    total_latency: float = 0.0
    execution_latency: float = 0.0
    reconfiguration_overhead: float = 0.0
    overhead_fraction: float = 0.0

    @property
    def bottleneck(self) -> PartitionUtilization:
        """The partition contributing the most execution latency."""
        return max(self.partitions, key=lambda p: p.latency)

    @property
    def peak_area_fraction(self) -> float:
        return max(p.area_fraction for p in self.partitions)

    @property
    def peak_memory_fraction(self) -> float:
        return max(p.memory_fraction for p in self.partitions)

    def table(self) -> TextTable:
        table = TextTable(
            "Partition utilization",
            (
                "partition", "tasks", "area", "area %",
                "latency (ns)", "latency %", "memory", "memory %",
            ),
        )
        for p in self.partitions:
            table.add_row(
                p.partition,
                p.tasks,
                p.area_used,
                round(100 * p.area_fraction, 1),
                p.latency,
                round(100 * p.latency_fraction, 1),
                p.memory_at_boundary,
                round(100 * p.memory_fraction, 1),
            )
        table.footer = (
            f"total {self.total_latency:,.0f} ns = execution "
            f"{self.execution_latency:,.0f} + reconfiguration "
            f"{self.reconfiguration_overhead:,.0f} "
            f"({100 * self.overhead_fraction:.1f}%)"
        )
        return table


def utilization_report(
    design: PartitionedDesign,
    processor: ReconfigurableProcessor,
    include_env_memory: bool = True,
) -> UtilizationReport:
    """Compute per-partition utilization for a finished design."""
    execution = design.execution_latency()
    total = design.total_latency(processor)
    overhead = processor.reconfiguration_overhead(
        design.num_partitions_used
    )
    report = UtilizationReport(
        total_latency=total,
        execution_latency=execution,
        reconfiguration_overhead=overhead,
        overhead_fraction=overhead / total if total else 0.0,
    )
    memory_cap = processor.memory_capacity
    for partition in design.partitions():
        area = design.partition_area(partition)
        latency = design.partition_latency(partition)
        memory = design.memory_at_boundary(partition, include_env_memory)
        report.partitions.append(
            PartitionUtilization(
                partition=partition,
                tasks=len(design.tasks_in(partition)),
                area_used=area,
                area_fraction=area / processor.resource_capacity,
                latency=latency,
                latency_fraction=latency / execution if execution else 0.0,
                memory_at_boundary=memory,
                memory_fraction=memory / memory_cap if memory_cap else 0.0,
            )
        )
    return report


def design_point_histogram(design: PartitionedDesign) -> dict[str, int]:
    """How often each design-point label was chosen across the design.

    With small devices the histogram skews toward ``dp1`` (small/slow);
    relaxing the partition count shifts it toward faster points — the
    mechanism behind the paper's small-``C_T`` results.
    """
    histogram: dict[str, int] = {}
    for name in design.graph.task_names:
        task = design.graph.task(name)
        point = design.design_point_of(name)
        index = task.design_points.index(point) + 1
        label = point.label(index)
        histogram[label] = histogram.get(label, 0) + 1
    return dict(sorted(histogram.items()))
