"""The combined temporal-partitioning + design-space-exploration ILP.

This module implements Section 3.2.3 of the paper.  Given a task graph, a
processor, a partition budget ``N`` and a latency window
``[D_min, D_max]``, :func:`build_model` constructs a
:class:`repro.ilp.Model` with:

========  =====================================================  =========
variable  meaning                                                 paper
========  =====================================================  =========
``Y``     ``Y[t,p,m] = 1`` iff task ``t`` is in partition ``p``   (1)-(2)
          with module set (design point) ``m``
``w``     ``w[p,(t1,t2)] = 1`` iff edge ``t1->t2`` crosses the    (4)-(5)
          boundary of partition ``p`` (producer before ``p``,
          consumer at ``p`` or later)
``d_p``   latency of partition ``p``                              (7)
``eta``   number of partitions actually used                      (8)
========  =====================================================  =========

and the constraints: uniqueness (1), temporal order (2), memory (3),
resource (6), per-path partition latency (7), partition count (8) and the
two-sided latency window (9)-(10).

The non-linear products in (4)-(5) are linearized one-sidedly by default:
``w >= before(t1) + atOrAfter(t2) - 1`` suffices because ``w`` appears
elsewhere only in the memory *capacity* row, which pushes it down (see
:func:`repro.ilp.linearize.product_of_sums`).  ``FormulationOptions`` can
request the exact two-sided linearization for verification.

Model construction is two-tier.  :func:`build_model` assembles a fresh
ILP for one latency window — the reference path.  :class:`ModelTemplate`
builds the *window-independent* part once per ``(graph, N, options)``,
compiles it to the sparse standard form of :mod:`repro.ilp.compile`, and
then :meth:`ModelTemplate.instantiate` produces per-window models by
patching only the right-hand sides of the latency rows (9)-(10) — one
``b_ub`` copy instead of a full rebuild.  The binary-subdivision search
(:mod:`repro.core.reduce_latency` via
:class:`repro.solve.executor.SolveExecutor`) holds one template across
all its iterations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.arch.processor import ReconfigurableProcessor
from repro.ilp import CompiledModel, Model, Solution, VarType, lin_sum, solve_compiled
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.paths import count_paths, enumerate_paths
from repro.core.solution import PartitionedDesign, Placement

__all__ = [
    "FormulationOptions",
    "ModelTemplate",
    "TemporalPartitioningModel",
    "build_model",
    "extract_design",
    "interchangeable_groups",
    "lp_latency_lower_bound",
    "warm_values_from_design",
]


def interchangeable_groups(graph: TaskGraph) -> list[tuple[str, ...]]:
    """Partition tasks into groups that any solution may permute freely.

    Two tasks are interchangeable when they have identical design-point
    tuples, the same predecessor and successor sets with the same data
    volumes, and the same environment I/O.  Swapping two such tasks maps
    any feasible partitioned design onto another feasible design with the
    same latency, so ordering them by partition index loses nothing.
    Only groups of size >= 2 are returned, in deterministic task order.
    """
    signatures: dict[tuple, list[str]] = {}
    for task in graph:
        signature = (
            tuple(
                (dp.area, dp.latency, dp.extra_resources)
                for dp in task.design_points
            ),
            tuple(
                sorted(
                    (pred, graph.data_volume(pred, task.name))
                    for pred in graph.predecessors(task.name)
                )
            ),
            tuple(
                sorted(
                    (succ, graph.data_volume(task.name, succ))
                    for succ in graph.successors(task.name)
                )
            ),
            graph.env_input(task.name),
            graph.env_output(task.name),
        )
        signatures.setdefault(signature, []).append(task.name)
    groups = [
        tuple(names) for names in signatures.values() if len(names) >= 2
    ]
    # Tasks that appear in each other's neighbor signatures are never
    # grouped together (their signatures differ), so the ordering
    # constraints below cannot conflict with the temporal order.
    return groups


@dataclass(frozen=True)
class FormulationOptions:
    """Knobs of the ILP formulation.

    Attributes
    ----------
    order_mode:
        ``"pairwise"`` — the paper's equation (2), one row per edge and
        partition (tighter LP relaxation); ``"index"`` — the compact
        partition-index inequality ``sum p*Y[t1] <= sum p*Y[t2]`` (fewer
        rows, weaker relaxation).  The ablation benchmark compares them.
    two_sided_w:
        Add the exact ``w <= ...`` rows of the linearization instead of
        the sufficient one-sided form.
    include_env_memory:
        Buffer host input until a task's partition and host output from a
        task's partition onward (the ``B(env,t)`` / ``B(t,env)`` terms of
        equation (3)).
    latency_mode:
        How equation (7) is encoded.  ``"paths"`` — the paper's explicit
        per-path rows (tightest; needs path enumeration).  ``"levels"`` —
        a start-time big-M encoding with one row per edge and per
        (task, partition) pair, polynomial regardless of path count
        (weaker LP relaxation; exact on integer points).  ``"auto"``
        (default) uses paths when the graph has at most ``path_limit``
        of them and falls back to levels otherwise.
    path_limit:
        Maximum number of source-sink paths enumerated for the latency
        constraint (7); beyond this, ``"paths"`` raises
        :class:`repro.taskgraph.paths.PathLimitExceeded` and ``"auto"``
        switches to ``"levels"``.
    minimize_latency:
        Attach the objective ``min sum(d_p) + C_T * eta``.  The paper's
        iterative mode leaves the model objective-free (pure constraint
        satisfaction); the optimality oracle of ``core.optimal`` enables
        this.
    symmetry_breaking:
        Add partition-index ordering constraints over *interchangeable*
        tasks (identical design points, predecessors, successors and
        environment I/O).  Such tasks can be permuted in any solution, so
        ordering them removes only duplicates; on the DCT (four identical
        producers and four identical consumers per collection) this
        shrinks the symmetric solution space by ``(4!)^8`` and speeds up
        infeasibility proofs dramatically.  An extension beyond the
        paper; off by default, on in the experiment harness.
    """

    order_mode: str = "pairwise"
    two_sided_w: bool = False
    include_env_memory: bool = True
    latency_mode: str = "auto"
    path_limit: int = 100_000
    minimize_latency: bool = False
    symmetry_breaking: bool = False

    def __post_init__(self) -> None:
        if self.order_mode not in ("pairwise", "index"):
            raise ValueError(
                f"unknown order_mode {self.order_mode!r}; "
                "expected 'pairwise' or 'index'"
            )
        if self.latency_mode not in ("auto", "paths", "levels"):
            raise ValueError(
                f"unknown latency_mode {self.latency_mode!r}; "
                "expected 'auto', 'paths' or 'levels'"
            )


@dataclass
class TemporalPartitioningModel:
    """A built ILP plus the handles needed to interpret its solutions.

    When produced by :meth:`ModelTemplate.instantiate`, ``compiled``
    carries the window-patched sparse standard form (solves bypass the
    expression layer entirely) and ``base_fingerprint`` the template's
    windowless structure digest (fingerprinting becomes a tuple
    composition instead of a hash).  ``model`` is then the template's
    *shared* expression model, kept in sync with the latest
    instantiation's window rows — use ``compiled`` for anything
    solver-facing.
    """

    model: Model
    graph: TaskGraph
    processor: ReconfigurableProcessor
    num_partitions: int
    d_max: float
    d_min: float
    options: FormulationOptions
    y_name: Mapping[tuple[str, int, int], str] = field(default_factory=dict)
    d_name: Mapping[int, str] = field(default_factory=dict)
    eta_name: str = "eta"
    #: Window-patched sparse standard form (template path); ``None`` when
    #: built freshly by :func:`build_model`.
    compiled: CompiledModel | None = None
    #: Windowless structure digest shared by all sibling instantiations.
    base_fingerprint: str | None = None

    def solve(self, **solve_kwargs) -> Solution:
        """Solve the underlying model (see :meth:`repro.ilp.Model.solve`)."""
        if self.compiled is not None:
            return solve_compiled(self.compiled, **solve_kwargs)
        return self.model.solve(**solve_kwargs)

    def design_from(self, solution: Solution) -> PartitionedDesign:
        """Decode a solver solution into a :class:`PartitionedDesign`."""
        return extract_design(self, solution)


def _y_name(task: str, partition: int, dp_index: int) -> str:
    return f"Y[{task},{partition},{dp_index}]"


def _w_name(partition: int, src: str, dst: str) -> str:
    return f"w[{partition},{src},{dst}]"


def _populate_ilp(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    num_partitions: int,
    options: FormulationOptions,
    d_max: float,
    d_min: float,
    force_lb: bool = False,
) -> tuple[Model, dict[tuple[str, int, int], str], dict[int, str]]:
    """Assemble constraints (1)-(10) into a fresh :class:`Model`.

    Shared by the fresh-build path (:func:`build_model`) and the
    template path (:class:`ModelTemplate`).  The latency-window rows are
    always the *last* constraints added — ``latency_ub`` then (when
    ``d_min > 0`` or ``force_lb``) ``latency_lb`` — which the template
    relies on to patch or drop them in the compiled form without
    touching any other row.  ``force_lb`` makes the lower-bound row
    unconditional so a template can serve windows with ``d_min > 0``.
    """
    n = num_partitions
    partitions = range(1, n + 1)
    model = Model(f"tp_{graph.name}_N{n}")

    # -- variables ---------------------------------------------------------
    y: dict[tuple[str, int, int], object] = {}
    y_name: dict[tuple[str, int, int], str] = {}
    for task in graph:
        for p in partitions:
            for k, _dp in enumerate(task.design_points, start=1):
                name = _y_name(task.name, p, k)
                y[(task.name, p, k)] = model.add_binary(name)
                y_name[(task.name, p, k)] = name

    # The slowest serial schedule bounds any d_p from above; a finite upper
    # bound keeps the LP relaxations bounded in feasibility mode.
    d_cap = graph.total_max_latency()
    d = {
        p: model.add_var(f"d[{p}]", lb=0.0, ub=d_cap)
        for p in partitions
    }
    d_name = {p: f"d[{p}]" for p in partitions}
    eta = model.add_var("eta", lb=1, ub=n, vtype=VarType.INTEGER)

    def y_sum(task: str, parts, dp_indices=None):
        count = len(graph.task(task).design_points)
        indices = dp_indices or range(1, count + 1)
        return lin_sum(y[(task, p, k)] for p in parts for k in indices)

    # -- (1) uniqueness ------------------------------------------------------
    for task in graph:
        model.add_constr(
            y_sum(task.name, partitions) == 1, name=f"uniq[{task.name}]"
        )

    # -- (2) temporal order ---------------------------------------------------
    if options.order_mode == "pairwise":
        # t2 in partition p forbids t1 in any later partition.
        for src, dst, _volume in graph.edges:
            for p in partitions:
                if p == n:
                    continue  # no later partition exists
                model.add_constr(
                    y_sum(dst, [p]) + y_sum(src, range(p + 1, n + 1)) <= 1,
                    name=f"order[{src},{dst},{p}]",
                )
    else:
        for src, dst, _volume in graph.edges:
            src_index = lin_sum(
                p * y[(src, p, k)]
                for p in partitions
                for k in range(1, len(graph.task(src).design_points) + 1)
            )
            dst_index = lin_sum(
                p * y[(dst, p, k)]
                for p in partitions
                for k in range(1, len(graph.task(dst).design_points) + 1)
            )
            model.add_constr(
                src_index <= dst_index, name=f"order[{src},{dst}]"
            )

    # -- (4)-(5) crossing variables ---------------------------------------------
    w: dict[tuple[int, str, str], object] = {}
    for p in range(2, n + 1):
        for src, dst, _volume in graph.edges:
            name = _w_name(p, src, dst)
            var = model.add_binary(name)
            w[(p, src, dst)] = var
            before = y_sum(src, range(1, p))
            at_or_after = y_sum(dst, range(p, n + 1))
            model.add_constr(
                var >= before + at_or_after - 1, name=f"{name}_ge"
            )
            if options.two_sided_w:
                model.add_constr(var <= before, name=f"{name}_le_src")
                model.add_constr(var <= at_or_after, name=f"{name}_le_dst")

    # -- (3) memory ----------------------------------------------------------------
    for p in partitions:
        terms = []
        for src, dst, volume in graph.edges:
            if p >= 2 and volume:
                terms.append(volume * w[(p, src, dst)])
        if options.include_env_memory:
            for task_name, volume in graph.env_inputs.items():
                if volume:
                    terms.append(
                        volume * y_sum(task_name, range(p, n + 1))
                    )
            for task_name, volume in graph.env_outputs.items():
                if volume and p >= 2:
                    terms.append(volume * y_sum(task_name, range(1, p)))
        if terms:
            model.add_constr(
                lin_sum(terms) <= processor.memory_capacity,
                name=f"memory[{p}]",
            )

    # -- (6) resource ------------------------------------------------------------------
    for p in partitions:
        usage = lin_sum(
            task.design_points[k - 1].area * y[(task.name, p, k)]
            for task in graph
            for k in range(1, len(task.design_points) + 1)
        )
        model.add_constr(
            usage <= processor.resource_capacity, name=f"resource[{p}]"
        )
    # Additional resource types ("similar equations can be added if
    # multiple resource types exist in the FPGA", Section 3.2.3).
    for kind, capacity in processor.extra_capacities:
        for p in partitions:
            usage = lin_sum(
                task.design_points[k - 1].resource_usage(kind)
                * y[(task.name, p, k)]
                for task in graph
                for k in range(1, len(task.design_points) + 1)
            )
            if usage.terms:
                model.add_constr(
                    usage <= capacity, name=f"resource_{kind}[{p}]"
                )

    # -- (7) per-partition latency ---------------------------------------------------
    latency_mode = options.latency_mode
    if latency_mode == "auto":
        latency_mode = (
            "paths"
            if count_paths(graph) <= options.path_limit
            else "levels"
        )
    if latency_mode == "paths":
        paths = enumerate_paths(graph, limit=options.path_limit)
        for index, path in enumerate(paths):
            for p in partitions:
                load = lin_sum(
                    graph.task(t).design_points[k - 1].latency * y[(t, p, k)]
                    for t in path
                    for k in range(1, len(graph.task(t).design_points) + 1)
                )
                model.add_constr(load <= d[p], name=f"pathlat[{index},{p}]")
    else:
        # Start-time big-M encoding: polynomial in |T| + |E| regardless
        # of the number of paths.  s[t] is the task's start offset within
        # its own partition; an edge inside one partition forces the
        # consumer after the producer; d_p dominates every member's
        # finish time.  Exact on integer points, weaker as an LP.
        big_m = d_cap

        def duration(t: str):
            task = graph.task(t)
            return lin_sum(
                task.design_points[k - 1].latency * y[(t, p, k)]
                for p in partitions
                for k in range(1, len(task.design_points) + 1)
            )

        s = {
            task.name: model.add_var(f"s[{task.name}]", lb=0.0, ub=d_cap)
            for task in graph
        }
        for src, dst, _volume in graph.edges:
            same = model.add_var(f"same[{src},{dst}]", lb=0.0, ub=1.0)
            for p in partitions:
                model.add_constr(
                    same >= y_sum(src, [p]) + y_sum(dst, [p]) - 1,
                    name=f"same[{src},{dst},{p}]",
                )
            model.add_constr(
                s[dst] >= s[src] + duration(src) - big_m * (1 - same),
                name=f"prec[{src},{dst}]",
            )
        for task in graph:
            for p in partitions:
                model.add_constr(
                    d[p]
                    >= s[task.name]
                    + duration(task.name)
                    - big_m * (1 - y_sum(task.name, [p])),
                    name=f"finish[{task.name},{p}]",
                )

    # Valid inequality: every used partition holds at most R_max area, so
    # eta * R_max bounds the total area of the chosen design points.  The
    # cut removes no integer solution but stops the LP relaxation from
    # pretending one reconfiguration suffices, which makes the LP latency
    # bound useful in the large-C_T regime.
    total_area = lin_sum(
        task.design_points[k - 1].area * y[(task.name, p, k)]
        for task in graph
        for p in partitions
        for k in range(1, len(task.design_points) + 1)
    )
    model.add_constr(
        processor.resource_capacity * eta >= total_area,
        name="eta_area_cut",
    )

    # -- (8) partitions used ------------------------------------------------------------------
    for sink in graph.sinks():
        sink_index = lin_sum(
            p * y[(sink, p, k)]
            for p in partitions
            for k in range(1, len(graph.task(sink).design_points) + 1)
        )
        model.add_constr(eta >= sink_index, name=f"eta[{sink}]")

    # -- symmetry breaking (extension; see FormulationOptions) -------------------------
    if options.symmetry_breaking:
        for group in interchangeable_groups(graph):
            for first, second in zip(group, group[1:]):
                first_index = lin_sum(
                    p * y[(first, p, k)]
                    for p in partitions
                    for k in range(
                        1, len(graph.task(first).design_points) + 1
                    )
                )
                second_index = lin_sum(
                    p * y[(second, p, k)]
                    for p in partitions
                    for k in range(
                        1, len(graph.task(second).design_points) + 1
                    )
                )
                model.add_constr(
                    first_index <= second_index,
                    name=f"sym[{first},{second}]",
                )

    # -- (9)-(10) latency window ----------------------------------------------------------------
    total_latency = (
        lin_sum(d.values()) + processor.reconfiguration_time * eta
    )
    model.add_constr(total_latency <= d_max, name="latency_ub")
    if force_lb or d_min > 0:
        model.add_constr(total_latency >= d_min, name="latency_lb")

    if options.minimize_latency:
        model.set_objective(
            lin_sum(d.values()) + processor.reconfiguration_time * eta
        )

    return model, y_name, d_name


def build_model(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    num_partitions: int,
    d_max: float,
    d_min: float = 0.0,
    options: FormulationOptions | None = None,
) -> TemporalPartitioningModel:
    """Build the combined partitioning + design-selection ILP.

    ``d_max``/``d_min`` bound the *overall* latency
    ``sum(d_p) + C_T * eta`` (equations (9)-(10)); both include the
    reconfiguration overhead, exactly as produced by
    :func:`repro.core.bounds.max_latency` / ``min_latency``.

    This is the reference single-window path.  A search that slides the
    window over a fixed ``(graph, N, options)`` should build one
    :class:`ModelTemplate` and call :meth:`ModelTemplate.instantiate`
    instead — same model, a fraction of the construction cost.
    """
    if num_partitions < 1:
        raise ValueError("need at least one partition")
    if d_max < d_min:
        raise ValueError(f"empty latency window [{d_min}, {d_max}]")
    options = options or FormulationOptions()
    model, y_name, d_name = _populate_ilp(
        graph, processor, num_partitions, options, d_max, d_min
    )
    return TemporalPartitioningModel(
        model=model,
        graph=graph,
        processor=processor,
        num_partitions=num_partitions,
        d_max=d_max,
        d_min=d_min,
        options=options,
        y_name=y_name,
        d_name=d_name,
        eta_name="eta",
    )


class ModelTemplate:
    """Window-independent base model, instantiated per latency window.

    The binary-subdivision search solves the *same* constraint system
    under a sliding window ``[d_min, d_max]``: of the hundreds of rows
    built by :func:`build_model`, only the right-hand sides of
    ``latency_ub`` / ``latency_lb`` (equations (9)-(10)) change between
    iterations.  A template therefore:

    1. builds the expression model **once** with placeholder window rows
       (the lower-bound row is forced in so both window shapes exist),
    2. compiles it **once** to the sparse standard form of
       :mod:`repro.ilp.compile` (CSR arrays, bounds, integrality,
       variable index map),
    3. hashes the windowless structure **once**
       (``base_fingerprint``, the solve cache's native key),

    and :meth:`instantiate` then costs one ``b_ub`` copy plus two scalar
    writes.  When ``d_min == 0`` the trailing ``latency_lb`` row is
    dropped via a zero-copy row truncation, so the instantiated form is
    array-for-array identical to what :func:`build_model` +
    :meth:`repro.ilp.Model.compile` produce for the same window — exact
    solution equivalence, not just agreement.
    """

    def __init__(
        self,
        graph: TaskGraph,
        processor: ReconfigurableProcessor,
        num_partitions: int,
        options: FormulationOptions | None = None,
        tracer=None,
    ) -> None:
        from repro.obs.tracer import as_tracer
        from repro.solve.fingerprint import WINDOW_ROW_NAMES

        if num_partitions < 1:
            raise ValueError("need at least one partition")
        tracer = as_tracer(tracer)
        self.graph = graph
        self.processor = processor
        self.num_partitions = num_partitions
        self.options = options or FormulationOptions()
        with tracer.span("template_populate", num_partitions=num_partitions):
            model, y_name, d_name = _populate_ilp(
                graph,
                processor,
                num_partitions,
                self.options,
                d_max=0.0,
                d_min=0.0,
                force_lb=True,
            )
        self._model = model
        self._y_name = y_name
        self._d_name = d_name
        with tracer.span("template_compile") as sp:
            compiled = model.compile()
            sp.annotate(
                ub_rows=compiled.num_ub_rows,
                eq_rows=compiled.num_eq_rows,
                vars=compiled.num_vars,
            )
        kind_ub, self._ub_row = compiled.row_position("latency_ub")
        kind_lb, self._lb_row = compiled.row_position("latency_lb")
        last = compiled.num_ub_rows - 1
        if (
            kind_ub != "ub"
            or kind_lb != "ub"
            or self._lb_row != last
            or self._ub_row != last - 1
        ):
            raise AssertionError(
                "window rows must be the last two inequality rows; "
                "_populate_ilp no longer adds them last"
            )
        self._full = compiled
        # Zero-copy prefix view without the latency_lb row, for windows
        # whose lower edge is zero (build_model omits the row there).
        self._no_lb = compiled.truncate_ub_rows(last)
        #: Inequality-row indices of the resource rows (6) — the
        #: window-independent positive-binary knapsack rows that cover
        #: cuts may be separated from.  Valid for every sibling: cuts
        #: and window patches never reorder the prefix.
        self.resource_row_indices: tuple[int, ...] = tuple(
            i
            for i, name in enumerate(compiled.ub_names)
            if name is not None and name.startswith("resource")
        )
        # Persistent cover-cut pool (see add_pool_cuts): cuts separated
        # once on the resource rows are valid for every window, so they
        # are stored here and re-applied on each instantiation.
        self._pool_cuts: list = []
        self._pool_keys: set[tuple[int, ...]] = set()
        self._pool_version = 0
        self._ext_cache: tuple[int, CompiledModel, CompiledModel] | None = None
        #: Digest of everything but the window rows; shared verbatim by
        #: every instantiation, so per-window fingerprints are composed
        #: without hashing (see :func:`repro.solve.fingerprint
        #: .fingerprint_model`).
        with tracer.span("template_fingerprint"):
            self.base_fingerprint = compiled.fingerprint(
                skip_rows=WINDOW_ROW_NAMES
            )

    def add_pool_cuts(self, cuts) -> int:
        """Add cover cuts to the persistent pool; return how many were new.

        Cuts must be separated from window-independent rows only (the
        executor passes :attr:`resource_row_indices` to the separator),
        so each pooled cut is a valid inequality for *every* window of
        this template.  Duplicates (same cover) are dropped.
        """
        added = 0
        for cut in cuts:
            key = tuple(cut.cover)
            if key in self._pool_keys:
                continue
            self._pool_keys.add(key)
            self._pool_cuts.append(cut)
            added += 1
        if added:
            self._pool_version += 1
        return added

    @property
    def pooled_cuts(self) -> int:
        """Number of cover cuts currently in the persistent pool."""
        return len(self._pool_cuts)

    def _extended(self) -> tuple[CompiledModel, CompiledModel]:
        """Cut-extended ``(_full, _no_lb)`` pair, cached per pool version.

        Pool rows are appended *after* every existing inequality row, so
        the window-row indices ``_ub_row`` / ``_lb_row`` remain valid in
        the extended forms.
        """
        if not self._pool_cuts:
            return self._full, self._no_lb
        cached = self._ext_cache
        if cached is not None and cached[0] == self._pool_version:
            return cached[1], cached[2]
        rows = [
            (list(cut.cover), [1.0] * len(cut.cover))
            for cut in self._pool_cuts
        ]
        rhs = [cut.rhs for cut in self._pool_cuts]
        names = [f"pool_cut[{i}]" for i in range(len(rows))]
        full_ext = self._full.with_extra_ub_rows(rows, rhs, names)
        no_lb_ext = self._no_lb.with_extra_ub_rows(rows, rhs, names)
        self._ext_cache = (self._pool_version, full_ext, no_lb_ext)
        return full_ext, no_lb_ext

    def instantiate(
        self,
        d_min: float,
        d_max: float,
        include_pool_cuts: bool = False,
    ) -> TemporalPartitioningModel:
        """Produce the model for one latency window ``[d_min, d_max]``.

        Patches only the right-hand sides of the latency rows (9)-(10);
        matrix structure, bounds, objective and the compiled dense/CSR
        view caches are shared across all windows of this template.
        With ``include_pool_cuts`` the persistent cover cuts are appended
        as extra inequality rows — they are valid for all integer points,
        so the instantiation answers exactly the same feasibility
        question (and may share the cache key of its cut-free sibling).
        """
        if d_max < d_min:
            raise ValueError(f"empty latency window [{d_min}, {d_max}]")
        d_min = float(d_min)
        d_max = float(d_max)
        # Keep the shared expression model's window rows in sync so LP
        # dumps and debugging reflect the latest instantiation.
        self._model.set_rhs("latency_ub", d_max)
        self._model.set_rhs("latency_lb", d_min)
        full, no_lb = (
            self._extended()
            if include_pool_cuts
            else (self._full, self._no_lb)
        )
        if d_min > 0:
            compiled = full.with_b_ub(
                # latency_lb is a >= row: stored negated in the <= block.
                {self._ub_row: d_max, self._lb_row: -d_min}
            )
        else:
            compiled = no_lb.with_b_ub({self._ub_row: d_max})
        return TemporalPartitioningModel(
            model=self._model,
            graph=self.graph,
            processor=self.processor,
            num_partitions=self.num_partitions,
            d_max=d_max,
            d_min=d_min,
            options=self.options,
            y_name=self._y_name,
            d_name=self._d_name,
            eta_name="eta",
            compiled=compiled,
            base_fingerprint=self.base_fingerprint,
        )


def lp_latency_lower_bound(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    num_partitions: int,
    options: FormulationOptions | None = None,
) -> float:
    """LP-relaxation lower bound on the total latency at ``N`` partitions.

    Solves the *linear relaxation* of the minimize-latency model (no
    latency window), which is a valid lower bound on any integer design's
    ``sum(d_p) + C_T * eta``.  The iterative search uses it to tighten
    ``D_min`` beyond the paper's critical-path bound: bisection windows
    below this value are provably empty and never reach the MILP solver.
    This is an extension over the paper (see DESIGN.md, Ablation E).
    """
    from repro.ilp.scipy_backend import solve_relaxation
    from repro.ilp.status import SolveStatus as _Status

    base = options or FormulationOptions()
    relax_options = replace(base, minimize_latency=True)
    # The serial worst case is always representable, so this d_max never
    # cuts the relaxation's optimum.
    d_max = graph.total_max_latency() + num_partitions * (
        processor.reconfiguration_time
    )
    tp_model = build_model(
        graph, processor, num_partitions, d_max, 0.0, relax_options
    )
    # The compiled sparse form goes straight to linprog — no dense
    # standard-form materialization for a one-shot LP.
    form = tp_model.model.compile()
    status, _x, objective, _iters = solve_relaxation(form)
    if status is _Status.INFEASIBLE:
        return math.inf
    if status is not _Status.OPTIMAL:
        # No usable bound; fall back to "no information".
        return 0.0
    return objective + form.c0


def warm_values_from_design(
    tp_model: TemporalPartitioningModel, design: PartitionedDesign
) -> dict[str, float]:
    """Lift a :class:`PartitionedDesign` back into ILP variable space.

    The inverse of :func:`extract_design`, extended to *every* variable
    of the formulation — ``Y``, ``d_p``, ``eta``, the crossing
    indicators ``w`` and (in levels mode) the start times ``s`` /
    same-partition indicators.  The returned mapping is a complete
    assignment: if the design satisfies the model's constraints, the
    point is feasible, so it can serve as an incumbent-reuse certificate
    (:meth:`repro.ilp.compile.CompiledModel.point_feasible`) or a
    validated MILP warm start.
    """
    graph = tp_model.graph
    n = tp_model.num_partitions
    values: dict[str, float] = {}
    part: dict[str, int] = {}
    for task in graph:
        placement = design.placements[task.name]
        part[task.name] = placement.partition
        chosen_k = None
        for k, dp in enumerate(task.design_points, start=1):
            if dp == placement.design_point:
                chosen_k = k  # first matching index: duplicates pick one Y
                break
        if chosen_k is None:
            raise ValueError(
                f"design point of task {task.name!r} is not among the "
                "task's design points"
            )
        for p in range(1, n + 1):
            for k in range(1, len(task.design_points) + 1):
                values[tp_model.y_name[(task.name, p, k)]] = float(
                    p == placement.partition and k == chosen_k
                )
    for p in range(1, n + 1):
        values[tp_model.d_name[p]] = float(design.partition_latency(p))
    values[tp_model.eta_name] = float(design.num_partitions_used)
    for p in range(2, n + 1):
        for src, dst, _volume in graph.edges:
            values[_w_name(p, src, dst)] = float(part[src] < p <= part[dst])
    # Levels-mode extras: start offsets within each partition and the
    # same-partition edge indicators.  Detected by variable presence so
    # "auto" templates are handled regardless of how the mode resolved.
    if tp_model.compiled is not None:
        known = tp_model.compiled.var_index
    else:
        known = {var.name: j for j, var in enumerate(tp_model.model.variables)}
    first_task = next(iter(graph)).name
    if f"s[{first_task}]" in known:
        start: dict[str, float] = {}
        for name in graph.topological_order():
            arrival = max(
                (
                    start[pred]
                    + design.placements[pred].design_point.latency
                    for pred in graph.predecessors(name)
                    if part[pred] == part[name]
                ),
                default=0.0,
            )
            start[name] = arrival
            values[f"s[{name}]"] = arrival
        for src, dst, _volume in graph.edges:
            values[f"same[{src},{dst}]"] = float(part[src] == part[dst])
    return values


def extract_design(
    tp_model: TemporalPartitioningModel, solution: Solution
) -> PartitionedDesign:
    """Decode the ``Y`` assignment of a feasible solution.

    Raises
    ------
    ValueError
        If the solution carries no assignment or a task has no (or more
        than one) selected ``Y`` variable — which would indicate a solver
        bug, since uniqueness is a hard constraint.
    """
    if not solution.status.has_solution:
        raise ValueError(
            f"solution has status {solution.status}; nothing to extract"
        )
    graph = tp_model.graph
    placements: dict[str, Placement] = {}
    for task in graph:
        chosen: tuple[int, int] | None = None
        for p in range(1, tp_model.num_partitions + 1):
            for k in range(1, len(task.design_points) + 1):
                name = tp_model.y_name[(task.name, p, k)]
                if solution.values.get(name, 0.0) > 0.5:
                    if chosen is not None:
                        raise ValueError(
                            f"task {task.name!r} selected twice "
                            f"(Y at {chosen} and {(p, k)})"
                        )
                    chosen = (p, k)
        if chosen is None:
            raise ValueError(f"task {task.name!r} has no selected Y variable")
        partition, dp_index = chosen
        placements[task.name] = Placement(
            partition=partition,
            design_point=task.design_points[dp_index - 1],
        )
    return PartitionedDesign(graph, placements)
