"""The combined temporal-partitioning + design-space-exploration ILP.

This module implements Section 3.2.3 of the paper.  Given a task graph, a
processor, a partition budget ``N`` and a latency window
``[D_min, D_max]``, :func:`build_model` constructs a
:class:`repro.ilp.Model` with:

========  =====================================================  =========
variable  meaning                                                 paper
========  =====================================================  =========
``Y``     ``Y[t,p,m] = 1`` iff task ``t`` is in partition ``p``   (1)-(2)
          with module set (design point) ``m``
``w``     ``w[p,(t1,t2)] = 1`` iff edge ``t1->t2`` crosses the    (4)-(5)
          boundary of partition ``p`` (producer before ``p``,
          consumer at ``p`` or later)
``d_p``   latency of partition ``p``                              (7)
``eta``   number of partitions actually used                      (8)
========  =====================================================  =========

and the constraints: uniqueness (1), temporal order (2), memory (3),
resource (6), per-path partition latency (7), partition count (8) and the
two-sided latency window (9)-(10).

The non-linear products in (4)-(5) are linearized one-sidedly by default:
``w >= before(t1) + atOrAfter(t2) - 1`` suffices because ``w`` appears
elsewhere only in the memory *capacity* row, which pushes it down (see
:func:`repro.ilp.linearize.product_of_sums`).  ``FormulationOptions`` can
request the exact two-sided linearization for verification.

The constraint families themselves live in registered builders
(:mod:`repro.core.families`): :func:`_populate_ilp` resolves the
:class:`~repro.core.families.ScenarioSpec` named by
``FormulationOptions.scenario`` (default ``paper_oneshot``, the paper's
exact formulation) and assembles its families in order, recording a
:class:`repro.ilp.compile.RowGroup` provenance span per family.  New
formulation variants are added by registering a scenario, not by
editing this module.

Model construction is two-tier.  :func:`build_model` assembles a fresh
ILP for one latency window — the reference path.  :class:`ModelTemplate`
builds the *window-independent* part once per ``(graph, N, options)``,
compiles it to the sparse standard form of :mod:`repro.ilp.compile`, and
then :meth:`ModelTemplate.instantiate` produces per-window models by
patching only the right-hand sides of the latency rows (9)-(10) —
located via the window family's row group — one ``b_ub`` copy instead
of a full rebuild.  The binary-subdivision search
(:mod:`repro.core.reduce_latency` via
:class:`repro.solve.executor.SolveExecutor`) holds one template across
all its iterations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.arch.processor import ReconfigurableProcessor
from repro.ilp import CompiledModel, Model, RowGroup, Solution, solve_compiled
from repro.taskgraph.graph import TaskGraph
from repro.core.families import (
    BuildContext,
    _w_name,
    _y_name,
    build_scenario,
    get_scenario,
    interchangeable_groups,
)
from repro.core.solution import PartitionedDesign, Placement

__all__ = [
    "FormulationOptions",
    "ModelTemplate",
    "TemporalPartitioningModel",
    "build_model",
    "extract_design",
    "interchangeable_groups",
    "lp_latency_lower_bound",
    "warm_values_from_design",
]


@dataclass(frozen=True)
class FormulationOptions:
    """Knobs of the ILP formulation.

    Attributes
    ----------
    order_mode:
        ``"pairwise"`` — the paper's equation (2), one row per edge and
        partition (tighter LP relaxation); ``"index"`` — the compact
        partition-index inequality ``sum p*Y[t1] <= sum p*Y[t2]`` (fewer
        rows, weaker relaxation).  The ablation benchmark compares them.
    two_sided_w:
        Add the exact ``w <= ...`` rows of the linearization instead of
        the sufficient one-sided form.
    include_env_memory:
        Buffer host input until a task's partition and host output from a
        task's partition onward (the ``B(env,t)`` / ``B(t,env)`` terms of
        equation (3)).
    latency_mode:
        How equation (7) is encoded.  ``"paths"`` — the paper's explicit
        per-path rows (tightest; needs path enumeration).  ``"levels"`` —
        a start-time big-M encoding with one row per edge and per
        (task, partition) pair, polynomial regardless of path count
        (weaker LP relaxation; exact on integer points).  ``"auto"``
        (default) uses paths when the graph has at most ``path_limit``
        of them and falls back to levels otherwise.
    path_limit:
        Maximum number of source-sink paths enumerated for the latency
        constraint (7); beyond this, ``"paths"`` raises
        :class:`repro.taskgraph.paths.PathLimitExceeded` and ``"auto"``
        switches to ``"levels"``.
    minimize_latency:
        Attach the objective ``min sum(d_p) + C_T * eta``.  The paper's
        iterative mode leaves the model objective-free (pure constraint
        satisfaction); the optimality oracle of ``core.optimal`` enables
        this.
    symmetry_breaking:
        Add partition-index ordering constraints over *interchangeable*
        tasks (identical design points, predecessors, successors and
        environment I/O).  Such tasks can be permuted in any solution, so
        ordering them removes only duplicates; on the DCT (four identical
        producers and four identical consumers per collection) this
        shrinks the symmetric solution space by ``(4!)^8`` and speeds up
        infeasibility proofs dramatically.  An extension beyond the
        paper; off by default, on in the experiment harness.
    scenario:
        Id of the registered :class:`~repro.core.families.ScenarioSpec`
        whose constraint families build the model.  ``"paper_oneshot"``
        (default) is the paper's formulation; ``"slot_coresident"`` the
        slotted partial-reconfiguration variant.
    scenario_params:
        Scenario parameter overrides as ``(key, value)`` pairs (e.g.
        ``(("num_slots", 3.0),)``).  A mapping or iterable of pairs is
        accepted and normalized to a sorted tuple, keeping options
        hashable (the executor keys its template cache on them) and
        JSON-round-trippable on the wire.
    """

    order_mode: str = "pairwise"
    two_sided_w: bool = False
    include_env_memory: bool = True
    latency_mode: str = "auto"
    path_limit: int = 100_000
    minimize_latency: bool = False
    symmetry_breaking: bool = False
    scenario: str = "paper_oneshot"
    scenario_params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.order_mode not in ("pairwise", "index"):
            raise ValueError(
                f"unknown order_mode {self.order_mode!r}; "
                "expected 'pairwise' or 'index'"
            )
        if self.latency_mode not in ("auto", "paths", "levels"):
            raise ValueError(
                f"unknown latency_mode {self.latency_mode!r}; "
                "expected 'auto', 'paths' or 'levels'"
            )
        get_scenario(self.scenario)  # raises ValueError on unknown ids
        # Normalize mapping / list-of-pairs input (wire decode hands the
        # JSON form straight in) to a sorted tuple of (str, float) pairs.
        params = self.scenario_params
        items = params.items() if isinstance(params, Mapping) else params
        object.__setattr__(
            self,
            "scenario_params",
            tuple(sorted((str(k), float(v)) for k, v in items)),
        )


@dataclass
class TemporalPartitioningModel:
    """A built ILP plus the handles needed to interpret its solutions.

    When produced by :meth:`ModelTemplate.instantiate`, ``compiled``
    carries the window-patched sparse standard form (solves bypass the
    expression layer entirely) and ``base_fingerprint`` the template's
    windowless structure digest (fingerprinting becomes a tuple
    composition instead of a hash).  ``model`` is then the template's
    *shared* expression model, kept in sync with the latest
    instantiation's window rows — use ``compiled`` for anything
    solver-facing.
    """

    model: Model
    graph: TaskGraph
    processor: ReconfigurableProcessor
    num_partitions: int
    d_max: float
    d_min: float
    options: FormulationOptions
    y_name: Mapping[tuple[str, int, int], str] = field(default_factory=dict)
    d_name: Mapping[int, str] = field(default_factory=dict)
    eta_name: str = "eta"
    #: Window-patched sparse standard form (template path); ``None`` when
    #: built freshly by :func:`build_model`.
    compiled: CompiledModel | None = None
    #: Windowless structure digest shared by all sibling instantiations.
    base_fingerprint: str | None = None
    #: Per-family row-group provenance in build order (see
    #: :func:`repro.core.families.build_scenario`).
    row_groups: tuple[RowGroup, ...] | None = None

    def solve(self, **solve_kwargs) -> Solution:
        """Solve the underlying model (see :meth:`repro.ilp.Model.solve`)."""
        if self.compiled is not None:
            return solve_compiled(self.compiled, **solve_kwargs)
        return self.model.solve(**solve_kwargs)

    def compiled_form(self) -> CompiledModel:
        """Compiled standard form with row-group provenance attached."""
        compiled = self.compiled
        if compiled is None:
            compiled = self.model.compile()
        if compiled.row_groups is None and self.row_groups is not None:
            compiled.row_groups = self.row_groups
        return compiled

    def design_from(self, solution: Solution) -> PartitionedDesign:
        """Decode a solver solution into a :class:`PartitionedDesign`."""
        return extract_design(self, solution)


def _populate_ilp(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    num_partitions: int,
    options: FormulationOptions,
    d_max: float,
    d_min: float,
    include_lb: bool = False,
) -> tuple[
    Model,
    dict[tuple[str, int, int], str],
    dict[int, str],
    tuple[RowGroup, ...],
]:
    """Assemble the scenario's constraint families into a fresh Model.

    Shared by the fresh-build path (:func:`build_model`) and the
    template path (:class:`ModelTemplate`).  The scenario named by
    ``options.scenario`` supplies the family sequence; each family's
    rows are recorded as a :class:`~repro.ilp.compile.RowGroup` span, so
    downstream consumers address rows by family id instead of position.
    The registry guarantees the window-dependent family builds last —
    its rows (``latency_ub`` and, when ``include_lb or d_min > 0``,
    ``latency_lb``) are the only ones whose right-hand sides change
    between bisection windows.  ``include_lb`` makes the lower-bound row
    unconditional so a template can serve windows with ``d_min > 0``.
    """
    scenario = get_scenario(options.scenario)
    model_name = f"tp_{graph.name}_N{num_partitions}"
    if scenario.id != "paper_oneshot":
        model_name += f"_{scenario.id}"
    ctx = BuildContext(
        graph=graph,
        processor=processor,
        num_partitions=num_partitions,
        options=options,
        model=Model(model_name),
        d_max=d_max,
        d_min=d_min,
        include_lb=include_lb,
        params=scenario.resolved_params(options),
    )
    row_groups = build_scenario(scenario, ctx)
    return ctx.model, ctx.y_name, ctx.d_name, row_groups


def build_model(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    num_partitions: int,
    d_max: float,
    d_min: float = 0.0,
    options: FormulationOptions | None = None,
) -> TemporalPartitioningModel:
    """Build the combined partitioning + design-selection ILP.

    ``d_max``/``d_min`` bound the *overall* latency
    ``sum(d_p) + C_T * eta`` (equations (9)-(10)); both include the
    reconfiguration overhead, exactly as produced by
    :func:`repro.core.bounds.max_latency` / ``min_latency``.

    This is the reference single-window path.  A search that slides the
    window over a fixed ``(graph, N, options)`` should build one
    :class:`ModelTemplate` and call :meth:`ModelTemplate.instantiate`
    instead — same model, a fraction of the construction cost.
    """
    if num_partitions < 1:
        raise ValueError("need at least one partition")
    if d_max < d_min:
        raise ValueError(f"empty latency window [{d_min}, {d_max}]")
    options = options or FormulationOptions()
    model, y_name, d_name, row_groups = _populate_ilp(
        graph, processor, num_partitions, options, d_max, d_min
    )
    return TemporalPartitioningModel(
        model=model,
        graph=graph,
        processor=processor,
        num_partitions=num_partitions,
        d_max=d_max,
        d_min=d_min,
        options=options,
        y_name=y_name,
        d_name=d_name,
        eta_name="eta",
        row_groups=row_groups,
    )


class ModelTemplate:
    """Window-independent base model, instantiated per latency window.

    The binary-subdivision search solves the *same* constraint system
    under a sliding window ``[d_min, d_max]``: of the hundreds of rows
    built by :func:`build_model`, only the right-hand sides of
    ``latency_ub`` / ``latency_lb`` (equations (9)-(10)) change between
    iterations.  A template therefore:

    1. builds the expression model **once** with placeholder window rows
       (the lower-bound row is forced in so both window shapes exist),
    2. compiles it **once** to the sparse standard form of
       :mod:`repro.ilp.compile` (CSR arrays, bounds, integrality,
       variable index map),
    3. hashes the windowless structure **once**
       (``base_fingerprint``, the solve cache's native key),

    and :meth:`instantiate` then costs one ``b_ub`` copy plus two scalar
    writes.  When ``d_min == 0`` the trailing ``latency_lb`` row is
    dropped via a zero-copy row truncation, so the instantiated form is
    array-for-array identical to what :func:`build_model` +
    :meth:`repro.ilp.Model.compile` produce for the same window — exact
    solution equivalence, not just agreement.
    """

    def __init__(
        self,
        graph: TaskGraph,
        processor: ReconfigurableProcessor,
        num_partitions: int,
        options: FormulationOptions | None = None,
        tracer=None,
    ) -> None:
        from repro.obs.tracer import as_tracer
        from repro.solve.fingerprint import WINDOW_ROW_NAMES

        if num_partitions < 1:
            raise ValueError("need at least one partition")
        tracer = as_tracer(tracer)
        self.graph = graph
        self.processor = processor
        self.num_partitions = num_partitions
        self.options = options or FormulationOptions()
        scenario = get_scenario(self.options.scenario)
        with tracer.span("template_populate", num_partitions=num_partitions):
            model, y_name, d_name, row_groups = _populate_ilp(
                graph,
                processor,
                num_partitions,
                self.options,
                d_max=0.0,
                d_min=0.0,
                include_lb=True,
            )
        self._model = model
        self._y_name = y_name
        self._d_name = d_name
        with tracer.span("template_compile") as sp:
            compiled = model.compile()
            compiled.row_groups = row_groups
            sp.annotate(
                ub_rows=compiled.num_ub_rows,
                eq_rows=compiled.num_eq_rows,
                vars=compiled.num_vars,
            )
        # The window family's rows are located by row-group provenance,
        # not positional convention.  The registry guarantees the family
        # builds last, so dropping its lower-bound row is a zero-copy
        # prefix truncation and every other family's span is untouched.
        window = compiled.row_group(scenario.window_family.id)
        names = tuple(
            compiled.ub_names[i] for i in window.ub_rows()
        )
        if (
            window.num_eq != 0
            or window.num_ub != 2
            or window.ub_stop != compiled.num_ub_rows
            or names != WINDOW_ROW_NAMES
        ):
            raise AssertionError(
                f"window family {scenario.window_family.id!r} must "
                f"contribute exactly the trailing inequality rows "
                f"{WINDOW_ROW_NAMES}; got span {window} with names {names}"
            )
        self._ub_row = window.ub_start
        self._lb_row = window.ub_start + 1
        self._full = compiled
        # Zero-copy prefix view without the latency_lb row, for windows
        # whose lower edge is zero (build_model omits the row there).
        self._no_lb = compiled.truncate_ub_rows(self._lb_row)
        #: Id of the scenario family whose rows cover cuts strengthen
        #: (the positive-binary knapsack capacity rows); stamped onto
        #: every cut the executor separates.
        self.cover_cut_family: str | None = next(
            (fam.id for fam in scenario.families if fam.cover_cuttable),
            None,
        )
        #: Inequality-row indices of the cover-cuttable capacity rows
        #: (equation (6) in the paper scenario) — window-independent
        #: positive-binary knapsack rows that cover cuts may be
        #: separated from.  Derived from row-group provenance; valid for
        #: every sibling: cuts and window patches never reorder the
        #: prefix.
        self.resource_row_indices: tuple[int, ...] = (
            tuple(compiled.row_group(self.cover_cut_family).ub_rows())
            if self.cover_cut_family is not None
            else ()
        )
        # Persistent cover-cut pool (see add_pool_cuts): cuts separated
        # once on the resource rows are valid for every window, so they
        # are stored here and re-applied on each instantiation.
        self._pool_cuts: list = []
        self._pool_keys: set[tuple[int, ...]] = set()
        self._pool_version = 0
        self._ext_cache: tuple[int, CompiledModel, CompiledModel] | None = None
        #: Digest of everything but the window rows; shared verbatim by
        #: every instantiation, so per-window fingerprints are composed
        #: without hashing (see :func:`repro.solve.fingerprint
        #: .fingerprint_model`).
        with tracer.span("template_fingerprint"):
            self.base_fingerprint = compiled.fingerprint(
                skip_rows=WINDOW_ROW_NAMES
            )

    def add_pool_cuts(self, cuts) -> int:
        """Add cover cuts to the persistent pool; return how many were new.

        Cuts must be separated from window-independent rows only (the
        executor passes :attr:`resource_row_indices` to the separator),
        so each pooled cut is a valid inequality for *every* window of
        this template.  Duplicates (same cover) are dropped.
        """
        added = 0
        for cut in cuts:
            key = tuple(cut.cover)
            if key in self._pool_keys:
                continue
            self._pool_keys.add(key)
            self._pool_cuts.append(cut)
            added += 1
        if added:
            self._pool_version += 1
        return added

    @property
    def pooled_cuts(self) -> int:
        """Number of cover cuts currently in the persistent pool."""
        return len(self._pool_cuts)

    def _extended(self) -> tuple[CompiledModel, CompiledModel]:
        """Cut-extended ``(_full, _no_lb)`` pair, cached per pool version.

        Pool rows are appended *after* every existing inequality row, so
        the window-row indices ``_ub_row`` / ``_lb_row`` remain valid in
        the extended forms.
        """
        if not self._pool_cuts:
            return self._full, self._no_lb
        cached = self._ext_cache
        if cached is not None and cached[0] == self._pool_version:
            return cached[1], cached[2]
        rows = [
            (list(cut.cover), [1.0] * len(cut.cover))
            for cut in self._pool_cuts
        ]
        rhs = [cut.rhs for cut in self._pool_cuts]
        names = [f"pool_cut[{i}]" for i in range(len(rows))]
        full_ext = self._full.with_extra_ub_rows(rows, rhs, names)
        no_lb_ext = self._no_lb.with_extra_ub_rows(rows, rhs, names)
        self._ext_cache = (self._pool_version, full_ext, no_lb_ext)
        return full_ext, no_lb_ext

    def instantiate(
        self,
        d_min: float,
        d_max: float,
        include_pool_cuts: bool = False,
    ) -> TemporalPartitioningModel:
        """Produce the model for one latency window ``[d_min, d_max]``.

        Patches only the right-hand sides of the latency rows (9)-(10);
        matrix structure, bounds, objective and the compiled dense/CSR
        view caches are shared across all windows of this template.
        With ``include_pool_cuts`` the persistent cover cuts are appended
        as extra inequality rows — they are valid for all integer points,
        so the instantiation answers exactly the same feasibility
        question (and may share the cache key of its cut-free sibling).
        """
        if d_max < d_min:
            raise ValueError(f"empty latency window [{d_min}, {d_max}]")
        d_min = float(d_min)
        d_max = float(d_max)
        # Keep the shared expression model's window rows in sync so LP
        # dumps and debugging reflect the latest instantiation.
        self._model.set_rhs("latency_ub", d_max)
        self._model.set_rhs("latency_lb", d_min)
        full, no_lb = (
            self._extended()
            if include_pool_cuts
            else (self._full, self._no_lb)
        )
        if d_min > 0:
            compiled = full.with_b_ub(
                # latency_lb is a >= row: stored negated in the <= block.
                {self._ub_row: d_max, self._lb_row: -d_min}
            )
        else:
            compiled = no_lb.with_b_ub({self._ub_row: d_max})
        return TemporalPartitioningModel(
            model=self._model,
            graph=self.graph,
            processor=self.processor,
            num_partitions=self.num_partitions,
            d_max=d_max,
            d_min=d_min,
            options=self.options,
            y_name=self._y_name,
            d_name=self._d_name,
            eta_name="eta",
            compiled=compiled,
            base_fingerprint=self.base_fingerprint,
        )


def lp_latency_lower_bound(
    graph: TaskGraph,
    processor: ReconfigurableProcessor,
    num_partitions: int,
    options: FormulationOptions | None = None,
) -> float:
    """LP-relaxation lower bound on the total latency at ``N`` partitions.

    Solves the *linear relaxation* of the minimize-latency model (no
    latency window), which is a valid lower bound on any integer design's
    ``sum(d_p) + C_T * eta``.  The iterative search uses it to tighten
    ``D_min`` beyond the paper's critical-path bound: bisection windows
    below this value are provably empty and never reach the MILP solver.
    This is an extension over the paper (see DESIGN.md, Ablation E).
    """
    from repro.ilp.scipy_backend import solve_relaxation
    from repro.ilp.status import SolveStatus as _Status

    base = options or FormulationOptions()
    relax_options = replace(base, minimize_latency=True)
    # The serial worst case is always representable, so this d_max never
    # cuts the relaxation's optimum.
    d_max = graph.total_max_latency() + num_partitions * (
        processor.reconfiguration_time
    )
    tp_model = build_model(
        graph, processor, num_partitions, d_max, 0.0, relax_options
    )
    # The compiled sparse form goes straight to linprog — no dense
    # standard-form materialization for a one-shot LP.
    form = tp_model.model.compile()
    status, _x, objective, _iters = solve_relaxation(form)
    if status is _Status.INFEASIBLE:
        return math.inf
    if status is not _Status.OPTIMAL:
        # No usable bound; fall back to "no information".
        return 0.0
    return objective + form.c0


def warm_values_from_design(
    tp_model: TemporalPartitioningModel, design: PartitionedDesign
) -> dict[str, float]:
    """Lift a :class:`PartitionedDesign` back into ILP variable space.

    The inverse of :func:`extract_design`, extended to *every* variable
    of the formulation — ``Y``, ``d_p``, ``eta``, the crossing
    indicators ``w`` and (in levels mode) the start times ``s`` /
    same-partition indicators.  The returned mapping is a complete
    assignment: if the design satisfies the model's constraints, the
    point is feasible, so it can serve as an incumbent-reuse certificate
    (:meth:`repro.ilp.compile.CompiledModel.point_feasible`) or a
    validated MILP warm start.
    """
    graph = tp_model.graph
    n = tp_model.num_partitions
    values: dict[str, float] = {}
    part: dict[str, int] = {}
    for task in graph:
        placement = design.placements[task.name]
        part[task.name] = placement.partition
        chosen_k = None
        for k, dp in enumerate(task.design_points, start=1):
            if dp == placement.design_point:
                chosen_k = k  # first matching index: duplicates pick one Y
                break
        if chosen_k is None:
            raise ValueError(
                f"design point of task {task.name!r} is not among the "
                "task's design points"
            )
        for p in range(1, n + 1):
            for k in range(1, len(task.design_points) + 1):
                values[tp_model.y_name[(task.name, p, k)]] = float(
                    p == placement.partition and k == chosen_k
                )
    for p in range(1, n + 1):
        values[tp_model.d_name[p]] = float(design.partition_latency(p))
    values[tp_model.eta_name] = float(design.num_partitions_used)
    # Crossing indicators exist from partition num_slots+1 on and fire
    # when the producer's slot has been reconfigured (num_slots steps
    # later) while the consumer has not run yet; num_slots is 1 in the
    # paper scenario (w[p] = 1 iff part[src] < p <= part[dst]).
    scenario = get_scenario(tp_model.options.scenario)
    resident = scenario.num_slots(tp_model.options)
    for p in range(1 + resident, n + 1):
        for src, dst, _volume in graph.edges:
            values[_w_name(p, src, dst)] = float(
                part[src] + resident <= p <= part[dst]
            )
    # Levels-mode extras: start offsets within each partition and the
    # same-partition edge indicators.  Detected by variable presence so
    # "auto" templates are handled regardless of how the mode resolved.
    if tp_model.compiled is not None:
        known = tp_model.compiled.var_index
    else:
        known = {var.name: j for j, var in enumerate(tp_model.model.variables)}
    first_task = next(iter(graph)).name
    if f"s[{first_task}]" in known:
        start: dict[str, float] = {}
        for name in graph.topological_order():
            arrival = max(
                (
                    start[pred]
                    + design.placements[pred].design_point.latency
                    for pred in graph.predecessors(name)
                    if part[pred] == part[name]
                ),
                default=0.0,
            )
            start[name] = arrival
            values[f"s[{name}]"] = arrival
        for src, dst, _volume in graph.edges:
            values[f"same[{src},{dst}]"] = float(part[src] == part[dst])
    return values


def extract_design(
    tp_model: TemporalPartitioningModel, solution: Solution
) -> PartitionedDesign:
    """Decode the ``Y`` assignment of a feasible solution.

    Raises
    ------
    ValueError
        If the solution carries no assignment or a task has no (or more
        than one) selected ``Y`` variable — which would indicate a solver
        bug, since uniqueness is a hard constraint.
    """
    if not solution.status.has_solution:
        raise ValueError(
            f"solution has status {solution.status}; nothing to extract"
        )
    graph = tp_model.graph
    placements: dict[str, Placement] = {}
    for task in graph:
        chosen: tuple[int, int] | None = None
        for p in range(1, tp_model.num_partitions + 1):
            for k in range(1, len(task.design_points) + 1):
                name = tp_model.y_name[(task.name, p, k)]
                if solution.values.get(name, 0.0) > 0.5:
                    if chosen is not None:
                        raise ValueError(
                            f"task {task.name!r} selected twice "
                            f"(Y at {chosen} and {(p, k)})"
                        )
                    chosen = (p, k)
        if chosen is None:
            raise ValueError(f"task {task.name!r} has no selected Y variable")
        partition, dp_index = chosen
        placements[task.name] = Placement(
            partition=partition,
            design_point=task.design_points[dp_index - 1],
        )
    return PartitionedDesign(graph, placements)
