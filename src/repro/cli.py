"""Command-line interface: ``repro-tp``.

Subcommands:

``partition``
    Temporally partition a task graph stored as JSON (see
    :mod:`repro.taskgraph.io` for the schema) for a given device, print
    the solution summary and iteration trace, optionally write the
    partitioned design as JSON and/or clustered Graphviz DOT.
``batch``
    Solve a JSON list of partitioning requests concurrently through the
    service layer (:mod:`repro.service`): shard worker processes, an
    optional persistent solve cache (``--cache``), outcomes as JSON.
``serve``
    The same service as a JSONL request/response loop on stdin/stdout —
    one request per input line, one outcome per output line.
``bounds``
    Print the Section 3.1 bounds for a graph/device pair without solving.
``generate``
    Emit a synthetic task graph (layered / fork-join / series-parallel /
    random) as JSON — handy for quick experiments and fuzzing.
``estimate``
    Run the HLS estimator on a built-in DFG template and print the
    resulting design points.
``table``
    Regenerate one of the paper's tables (1-8).
``trace``
    Inspect a recorded trace: ``trace report run.jsonl`` prints the
    per-phase time profile and span tree, ``trace export-chrome``
    converts a JSONL event file for ``chrome://tracing`` / Perfetto.
``metrics``
    Inspect recorded metrics: ``metrics report metrics.json`` pretty-
    prints one or more :class:`~repro.obs.MetricsSnapshot` dumps
    (``--metrics-json``), merging them first; ``--prom`` emits the
    Prometheus text exposition instead.
``analyze``
    Build the window model for a graph/device/partition-count
    combination and run the pre-solve analyzer (:mod:`repro.analysis`)
    without solving; prints the diagnostics report (catalog in
    ``docs/analysis.md``).
``lint``
    Run the repo's scope-aware static analysis
    (:mod:`repro.staticcheck`, rules RL001-RL009) over the source
    tree; text, JSON or SARIF output, findings baseline support
    (catalog in ``docs/staticcheck.md``).

Exit codes (shared by all subcommands):

* ``0`` — success (``analyze``: no ERROR diagnostics),
* ``1`` — no solution / no feasible design,
* ``2`` — usage or input error (bad flags, unreadable or invalid
  graph file),
* ``3`` — ``analyze`` found diagnostics at the failing severity.

Examples::

    repro-tp generate layered --levels 3 --per-level 4 -o g.json
    repro-tp bounds g.json --r-max 700
    repro-tp partition g.json --r-max 700 --m-max 512 --ct 40 --gamma 1
    repro-tp partition g.json --r-max 700 --trace-jsonl run.jsonl \\
        --trace-chrome run.trace.json
    repro-tp trace report run.jsonl
    repro-tp analyze g.json --r-max 700 -n 3
    repro-tp estimate vector-product --length 4 --data-width 8
    repro-tp table 1
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.arch.processor import ReconfigurableProcessor
from repro.core import (
    PartitionerConfig,
    PartitionRequest,
    RefinementConfig,
    SolverSettings,
    TemporalPartitioner,
    bounds,
)
from repro.staticcheck import cli as staticcheck_cli
from repro.taskgraph import generators, io as graph_io
from repro.taskgraph.graph import TaskGraph

__all__ = ["main", "build_parser"]

#: Exit codes of every subcommand (documented in ``--help``).
EXIT_OK = 0
#: No feasible design / no solution found.
EXIT_NO_SOLUTION = 1
#: Usage or input error (argparse uses 2 for bad flags; unreadable or
#: invalid graph files map here too so scripts can tell "bad input"
#: from "clean run, bad model").
EXIT_USAGE = 2
#: ``repro-tp analyze`` found diagnostics at the failing severity.
EXIT_DIAGNOSTICS = 3


def _add_device_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--r-max", type=float, required=True,
        help="resource capacity of the device (R_max)",
    )
    parser.add_argument(
        "--m-max", type=float, default=2048.0,
        help="on-board memory capacity (M_max), default 2048",
    )
    parser.add_argument(
        "--ct", type=float, default=30.0,
        help="reconfiguration time C_T in ns, default 30",
    )


def _device(args: argparse.Namespace) -> ReconfigurableProcessor:
    return ReconfigurableProcessor(
        resource_capacity=args.r_max,
        memory_capacity=args.m_max,
        reconfiguration_time=args.ct,
        name="cli_device",
    )


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario", default="paper_oneshot",
        help="registered formulation scenario (default: paper_oneshot; "
             "e.g. slot_coresident for slotted partial reconfiguration)",
    )
    parser.add_argument(
        "--scenario-param", action="append", default=[], metavar="KEY=VALUE",
        help="scenario parameter override (repeatable), "
             "e.g. --scenario-param num_slots=3",
    )


def _formulation_options(args: argparse.Namespace):
    """Build :class:`FormulationOptions` from the scenario flags.

    Unknown scenario ids and malformed ``KEY=VALUE`` pairs exit with
    :data:`EXIT_USAGE` like any other bad input.
    """
    from repro.core import FormulationOptions

    params: dict[str, float] = {}
    for item in args.scenario_param:
        key, sep, value = item.partition("=")
        if not sep or not key:
            print(
                f"error: --scenario-param expects KEY=VALUE, got {item!r}",
                file=sys.stderr,
            )
            raise SystemExit(EXIT_USAGE)
        try:
            params[key] = float(value)
        except ValueError:
            print(
                f"error: --scenario-param value for {key!r} must be a "
                f"number, got {value!r}",
                file=sys.stderr,
            )
            raise SystemExit(EXIT_USAGE)
    try:
        return FormulationOptions(
            scenario=args.scenario, scenario_params=params
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(EXIT_USAGE)


def _load_graph(path: str) -> TaskGraph:
    """Load a task-graph JSON file, exiting with :data:`EXIT_USAGE` on
    unreadable or invalid input (``GraphValidationError`` is a
    ``ValueError``)."""
    try:
        return graph_io.load_json(Path(path))
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: cannot load graph {path}: {exc}", file=sys.stderr)
        raise SystemExit(EXIT_USAGE)


def _write_text(path_str: str, text: str, label: str) -> Path:
    """Write an output file, creating parent directories.

    A path that cannot be written (missing permissions, a directory in
    the way, ...) aborts the command with a clear message instead of a
    traceback.
    """
    path = Path(path_str)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    except OSError as exc:
        raise SystemExit(f"error: cannot write {label} to {path}: {exc}")
    return path


def _cmd_partition(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    processor = _device(args)
    clustering = None
    if args.cluster:
        from repro.taskgraph import cluster_chains

        clustering = cluster_chains(graph)
        if clustering.num_merged:
            print(
                f"chain clustering: {len(graph)} tasks -> "
                f"{len(clustering.graph)}"
            )
            graph = clustering.graph
        else:
            clustering = None
    metrics_registry = None
    if args.metrics_json:
        from repro.obs import MetricsRegistry

        metrics_registry = MetricsRegistry()
    tracer = None
    chrome_events = None
    if args.trace_jsonl or args.trace_chrome:
        from repro.obs import JsonlSink, MemorySink, Tracer

        sinks = []
        if args.trace_jsonl:
            try:
                sinks.append(JsonlSink(args.trace_jsonl))
            except OSError as exc:
                raise SystemExit(
                    f"error: cannot write trace to {args.trace_jsonl}: {exc}"
                )
        if args.trace_chrome:
            chrome_events = MemorySink()
            sinks.append(chrome_events)
        tracer = Tracer(*sinks)
    if args.backend == "portfolio":
        # Race the scipy/HiGHS backend against the native branch & bound;
        # the first conclusive verdict wins each window solve.
        solver = SolverSettings(
            portfolio=("highs", "bnb"),
            time_limit=args.solve_limit,
            enable_cache=not args.no_cache,
            tracer=tracer,
            metrics=metrics_registry,
        )
    else:
        solver = SolverSettings(
            backend=args.backend,
            time_limit=args.solve_limit,
            enable_cache=not args.no_cache,
            tracer=tracer,
            metrics=metrics_registry,
        )
    config = PartitionerConfig(
        search=RefinementConfig(
            alpha=args.alpha,
            gamma=args.gamma,
            delta=args.delta,
            delta_fraction=args.delta_fraction,
            time_budget=args.time_budget,
        ),
        formulation=_formulation_options(args),
        solver=solver,
    )
    outcome = TemporalPartitioner(processor, config).solve(
        PartitionRequest(graph=graph)
    )

    if tracer is not None:
        # Every span is closed once the partitioner returns: flush the
        # JSONL sink and export the Chrome trace now, so the files exist
        # even when no feasible design was found.
        tracer.close()
        if args.trace_jsonl:
            print(f"trace events written to {args.trace_jsonl}")
        if args.trace_chrome:
            from repro.obs import write_chrome_trace

            try:
                write_chrome_trace(args.trace_chrome, chrome_events.events)
            except OSError as exc:
                raise SystemExit(
                    "error: cannot write chrome trace to "
                    f"{args.trace_chrome}: {exc}"
                )
            print(f"chrome trace written to {args.trace_chrome}")

    if args.telemetry_json and outcome.telemetry is not None:
        _write_text(
            args.telemetry_json,
            json.dumps(
                outcome.telemetry.to_dict(include_solves=True), indent=2
            ),
            "telemetry",
        )
        print(f"telemetry written to {args.telemetry_json}")
    if metrics_registry is not None:
        _write_text(
            args.metrics_json,
            json.dumps(metrics_registry.snapshot().to_dict(), indent=2),
            "metrics",
        )
        print(f"metrics written to {args.metrics_json}")
    if outcome.degraded:
        print(
            "warning: solver budget exhausted on some windows; "
            "result comes from the heuristic fallback (degraded)",
            file=sys.stderr,
        )

    if args.trace:
        print("N  I  D_min        D_max        D_a")
        for record in outcome.trace:
            n, i, d_min, d_max, achieved = record.row(
                processor.reconfiguration_time
            )
            shown = "Inf." if achieved is None else f"{achieved:,.1f}"
            print(f"{n:<3}{i:<3}{d_min:<13,.1f}{d_max:<13,.1f}{shown}")
        print()
        print(outcome.trace.convergence_chart())
        print()

    if not outcome.feasible:
        print("no feasible temporal partitioning found", file=sys.stderr)
        return 1

    design = outcome.design
    if clustering is not None:
        design = clustering.expand(design)
        graph = design.graph
        outcome.design = design

    print(design.summary(processor))
    if args.report:
        from repro.core import design_point_histogram, utilization_report

        print()
        print(utilization_report(outcome.design, processor).table().render())
        histogram = design_point_histogram(outcome.design)
        chosen = ", ".join(f"{k}: {v}" for k, v in histogram.items())
        print(f"design points chosen: {chosen}")
    if args.out_json:
        _write_text(
            args.out_json,
            json.dumps(outcome.design.as_assignment(), indent=2),
            "assignment",
        )
        print(f"assignment written to {args.out_json}")
    if args.out_dot:
        partition_of = {
            name: outcome.design.partition_of(name)
            for name in graph.task_names
        }
        _write_text(
            args.out_dot, graph_io.to_dot(graph, partition_of), "DOT file"
        )
        print(f"clustered DOT written to {args.out_dot}")
    return 0


def _batch_request(
    entry, base_dir: Path, line_label: str
) -> PartitionRequest:
    """Decode one batch/serve entry into a :class:`PartitionRequest`.

    ``entry["graph"]`` is either a path to a task-graph JSON file
    (resolved relative to ``base_dir``) or an inline graph payload;
    optional ``processor``/``config`` keys use the service wire format.
    """
    from repro.service import wire as service_wire

    if not isinstance(entry, dict) or "graph" not in entry:
        print(
            f"error: {line_label}: expected an object with a 'graph' key",
            file=sys.stderr,
        )
        raise SystemExit(EXIT_USAGE)
    graph_spec = entry["graph"]
    if isinstance(graph_spec, str):
        graph_path = Path(graph_spec)
        if not graph_path.is_absolute():
            graph_path = base_dir / graph_path
        graph = _load_graph(str(graph_path))
    else:
        try:
            graph = graph_io.from_dict(graph_spec)
        except (ValueError, KeyError, TypeError) as exc:
            print(
                f"error: {line_label}: invalid inline graph: {exc}",
                file=sys.stderr,
            )
            raise SystemExit(EXIT_USAGE)
    return PartitionRequest(
        graph=graph,
        processor=(
            None
            if entry.get("processor") is None
            else service_wire.decode_processor(entry["processor"])
        ),
        config=(
            None
            if entry.get("config") is None
            else service_wire.decode_config(entry["config"])
        ),
    )


def _service_config(args: argparse.Namespace) -> PartitionerConfig:
    return PartitionerConfig(
        search=RefinementConfig(
            delta=args.delta,
            time_budget=args.time_budget,
        ),
        solver=SolverSettings(time_limit=args.solve_limit),
    )


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.service import PartitionService

    requests_path = Path(args.requests)
    try:
        payload = json.loads(requests_path.read_text())
    except (OSError, ValueError) as exc:
        print(
            f"error: cannot read batch file {args.requests}: {exc}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if not isinstance(payload, list):
        print(
            "error: batch file must hold a JSON list of requests",
            file=sys.stderr,
        )
        return EXIT_USAGE
    requests = [
        _batch_request(entry, requests_path.parent, f"request {i}")
        for i, entry in enumerate(payload, 1)
    ]
    registry = _service_metrics(args)
    with PartitionService(
        processor=_device(args),
        config=_service_config(args),
        max_workers=args.workers,
        cache_path=args.cache,
        metrics=registry,
    ) as service:
        outcomes = service.solve_batch(requests)
    _dump_service_metrics(args, registry)
    results = [
        outcome.to_dict(include_trace=args.trace) for outcome in outcomes
    ]
    text = json.dumps(results, indent=2)
    if args.output:
        _write_text(args.output, text, "batch results")
        print(f"{len(results)} outcomes written to {args.output}")
    else:
        print(text)
    feasible = sum(1 for outcome in outcomes if outcome.feasible)
    print(
        f"batch: {feasible}/{len(outcomes)} feasible, "
        f"{sum(1 for o in outcomes if o.degraded)} degraded",
        file=sys.stderr,
    )
    return EXIT_OK if feasible == len(outcomes) else EXIT_NO_SOLUTION


def _service_metrics(args: argparse.Namespace):
    """A :class:`MetricsRegistry` when any metrics flag asks for one."""
    wants = bool(getattr(args, "metrics_json", None)) or (
        getattr(args, "metrics_port", None) is not None
    )
    if not wants:
        return None
    from repro.obs import MetricsRegistry

    return MetricsRegistry()


def _dump_service_metrics(args: argparse.Namespace, registry) -> None:
    if registry is None or not getattr(args, "metrics_json", None):
        return
    _write_text(
        args.metrics_json,
        json.dumps(registry.snapshot().to_dict(), indent=2),
        "metrics",
    )
    print(f"metrics written to {args.metrics_json}", file=sys.stderr)


def _cmd_serve(args: argparse.Namespace) -> int:
    """JSONL request/response loop over stdin/stdout.

    One request object per input line (same shape as ``batch`` entries);
    one outcome object per output line, in input order.  A blank line or
    EOF ends the session.  Designed for driving from another process
    without any network dependency.  With ``--metrics-port`` a
    background HTTP thread additionally serves the live
    :class:`~repro.obs.MetricsRegistry` on ``/metrics`` (Prometheus
    text exposition) and ``/metrics.json`` for the session's lifetime.
    """
    from repro.service import PartitionService

    registry = _service_metrics(args)
    server = None
    if args.metrics_port is not None:
        from repro.obs import MetricsServer

        server = MetricsServer(registry, port=args.metrics_port)
        server.start()
        print(f"metrics at {server.url}", file=sys.stderr, flush=True)
    try:
        with PartitionService(
            processor=_device(args),
            config=_service_config(args),
            max_workers=args.workers,
            cache_path=args.cache,
            metrics=registry,
        ) as service:
            served = 0
            for line in sys.stdin:
                line = line.strip()
                if not line:
                    break
                try:
                    entry = json.loads(line)
                    request = _batch_request(
                        entry, Path.cwd(), f"line {served + 1}"
                    )
                except (ValueError, SystemExit):
                    print(
                        json.dumps({"error": "invalid request"}), flush=True
                    )
                    continue
                outcome = service.submit(request).result()
                print(
                    json.dumps(outcome.to_dict(include_trace=args.trace)),
                    flush=True,
                )
                served += 1
    finally:
        if server is not None:
            server.stop()
    _dump_service_metrics(args, registry)
    print(f"served {served} requests", file=sys.stderr)
    return EXIT_OK


def _cmd_bounds(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    processor = _device(args)
    prange = bounds.partition_range(graph, processor)
    print(f"graph: {graph.name} ({len(graph)} tasks, {graph.num_edges} edges)")
    print(f"N_min^l (min-area partitions): {prange.lower_bound}")
    print(f"N_min^u (max-area partitions): {prange.upper_seed}")
    for n in prange:
        d_max = bounds.max_latency(graph, n, processor.reconfiguration_time)
        d_min = bounds.min_latency(graph, n, processor.reconfiguration_time)
        print(f"N={n}: D_min={d_min:,.1f}  D_max={d_max:,.1f}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "layered":
        graph = generators.layered_graph(
            args.levels, args.per_level, seed=args.seed
        )
    elif args.kind == "fork-join":
        graph = generators.fork_join_graph(
            args.branches, args.branch_length, seed=args.seed
        )
    elif args.kind == "series-parallel":
        graph = generators.series_parallel_graph(args.depth, seed=args.seed)
    else:
        graph = generators.random_dag(
            args.tasks, seed=args.seed, edge_probability=args.density
        )
    if args.output:
        graph_io.save_json(graph, args.output)
        print(f"{graph.name}: {len(graph)} tasks -> {args.output}")
    else:
        print(json.dumps(graph_io.to_dict(graph), indent=2))
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    from repro.hls import (
        EstimatorConfig,
        estimate_design_points,
        filter_section_dfg,
        fir_dfg,
        vector_product_dfg,
    )

    if args.template == "vector-product":
        dfg = vector_product_dfg(
            args.length, args.data_width, args.data_width + 4
        )
    elif args.template == "filter-section":
        dfg = filter_section_dfg(args.length, args.data_width)
    else:
        dfg = fir_dfg(args.length, args.data_width)
    points = estimate_design_points(
        dfg, config=EstimatorConfig(max_points=args.max_points)
    )
    print(f"{dfg.name}: {len(dfg)} operations")
    for dp in points:
        print(f"  {dp}  modules={dp.module_set}")
    return 0


def _cmd_curve(args: argparse.Namespace) -> int:
    from repro.core import partition_latency_curve

    graph = _load_graph(args.graph)
    processor = _device(args)
    counts = None
    if args.min_n is not None or args.max_n is not None:
        lo = args.min_n or 1
        hi = args.max_n or (lo + 4)
        counts = list(range(lo, hi + 1))
    curve = partition_latency_curve(
        graph,
        processor,
        partition_counts=counts,
        delta=args.delta,
        settings=SolverSettings(time_limit=args.solve_limit),
    )
    print(curve.table(
        f"Partition/latency trade-off ({graph.name}, "
        f"C_T={processor.reconfiguration_time:g} ns)"
    ).render())
    return 0 if curve.best() is not None else 1


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.core import build_model, diagnose_infeasibility

    graph = _load_graph(args.graph)
    processor = _device(args)
    d_max = args.d_max
    if d_max is None:
        d_max = bounds.max_latency(
            graph, args.partitions, processor.reconfiguration_time
        )
    tp = build_model(graph, processor, args.partitions, d_max)
    solution = tp.solve(
        backend="highs", first_feasible=True, time_limit=args.solve_limit
    )
    if solution.status.has_solution:
        design = tp.design_from(solution)
        print(
            f"feasible at N={args.partitions}, d_max={d_max:g}: "
            f"latency {design.total_latency(processor):,.1f} ns"
        )
        return 0
    report = diagnose_infeasibility(tp)
    print(f"infeasible at N={args.partitions}, d_max={d_max:g}")
    print(f"diagnosis: {report.message}")
    for family, restored in sorted(report.detail.items()):
        marker = "CULPRIT" if restored else "ok"
        print(f"  {family:<16}{marker}")
    return 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_model
    from repro.core import build_model

    graph = _load_graph(args.graph)
    processor = _device(args)
    d_max = args.d_max
    if d_max is None:
        d_max = bounds.max_latency(
            graph, args.partitions, processor.reconfiguration_time
        )
    options = _formulation_options(args)
    tp = build_model(
        graph, processor, args.partitions, d_max, args.d_min, options
    )
    report = analyze_model(tp)
    if args.json:
        payload = {
            "graph": graph.name,
            "num_partitions": args.partitions,
            "scenario": options.scenario,
            "d_min": args.d_min,
            "d_max": d_max,
            **report.to_dict(),
        }
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"analyzing {graph.name} at N={args.partitions}, "
            f"window [{args.d_min:g}, {d_max:g}]"
        )
        print(report.render())
    failing = report.errors if not args.strict else report.diagnostics
    return EXIT_DIAGNOSTICS if failing else EXIT_OK


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.obs import PhaseProfile, load_events, render_span_tree

    try:
        events = load_events(args.file)
    except OSError as exc:
        print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    profile = PhaseProfile.from_events(events)
    print(profile.report(top=args.top))
    if not args.no_tree:
        print()
        print("span tree")
        print("---------")
        print(render_span_tree(events, max_depth=args.depth))
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from repro.obs import jsonl_to_chrome

    try:
        out = jsonl_to_chrome(args.file, args.output)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"chrome trace written to {out}")
    return 0


def _load_snapshots(path: str):
    """Parse a ``--metrics-json`` dump (one snapshot object, a JSON list
    of them, or JSONL with one snapshot per line) into snapshots."""
    from repro.obs import MetricsSnapshot

    try:
        text = Path(path).read_text()
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(EXIT_USAGE)
    try:
        payload = json.loads(text)
        payloads = payload if isinstance(payload, list) else [payload]
    except ValueError:
        try:
            payloads = [
                json.loads(line)
                for line in text.splitlines()
                if line.strip()
            ]
        except ValueError as exc:
            print(
                f"error: {path} is neither JSON nor JSONL: {exc}",
                file=sys.stderr,
            )
            raise SystemExit(EXIT_USAGE)
    try:
        return [MetricsSnapshot.from_dict(p) for p in payloads]
    except (ValueError, KeyError, TypeError) as exc:
        print(
            f"error: {path}: not a metrics snapshot: {exc}", file=sys.stderr
        )
        raise SystemExit(EXIT_USAGE)


def _render_metrics_table(snapshot) -> str:
    """Human-readable summary of one (possibly merged) snapshot."""
    lines: list[str] = []
    for name in snapshot.names():
        family = snapshot.family(name)
        lines.append(f"{name} ({family['kind']}) — {family['help']}")
        labelnames = family["labelnames"]
        for key in sorted(family["samples"]):
            label = (
                "{" + ", ".join(
                    f"{n}={v}" for n, v in zip(labelnames, key)
                ) + "}"
                if labelnames
                else "-"
            )
            if family["kind"] == "histogram":
                count, total = snapshot.histogram_stats(name, *key)
                parts = [f"count={count}", f"sum={total:.6g}"]
                for q, tag in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                    estimate = snapshot.quantile(name, q, *key)
                    if estimate is not None:
                        parts.append(f"{tag}<={estimate:g}")
                lines.append(f"  {label:<40} {' '.join(parts)}")
            else:
                value = snapshot.value(name, *key)
                shown = (
                    f"{int(value)}" if value == int(value) else f"{value:g}"
                )
                lines.append(f"  {label:<40} {shown}")
    return "\n".join(lines)


def _cmd_metrics_report(args: argparse.Namespace) -> int:
    from repro.obs import MetricsSnapshot, render_promtext

    merged = MetricsSnapshot.empty()
    for path in args.files:
        for snapshot in _load_snapshots(path):
            merged = merged.merge(snapshot)
    if not merged:
        print("no metrics recorded", file=sys.stderr)
        return EXIT_NO_SOLUTION
    if args.prom:
        sys.stdout.write(render_promtext(merged))
    elif args.json:
        print(json.dumps(merged.to_dict(), indent=2))
    else:
        print(_render_metrics_table(merged))
    return EXIT_OK


def _cmd_lint(args: argparse.Namespace) -> int:
    return staticcheck_cli.run(args)


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import (
        DCT_EXPERIMENTS,
        table1_ar_filter,
        table2_design_points,
    )

    settings = SolverSettings(time_limit=args.solve_limit)
    if args.number == 1:
        print(table1_ar_filter(settings=settings).table.render())
    elif args.number == 2:
        print(table2_design_points().render())
    else:
        result = DCT_EXPERIMENTS[args.number](
            settings=settings, time_budget=args.time_budget
        )
        print(result.table().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tp",
        description="Temporal partitioning with design space exploration "
        "(DATE 1999 reproduction)",
        epilog="exit codes: 0 success; 1 no feasible design/solution; "
        "2 usage or input error; 3 'analyze' found failing diagnostics",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    partition = subparsers.add_parser(
        "partition", help="partition a JSON task graph"
    )
    partition.add_argument("graph", help="task graph JSON file")
    _add_device_arguments(partition)
    partition.add_argument("--alpha", type=int, default=0)
    partition.add_argument("--gamma", type=int, default=0)
    partition.add_argument(
        "--delta", type=float, default=None,
        help="latency tolerance (absolute); default: fraction of D_max",
    )
    partition.add_argument("--delta-fraction", type=float, default=0.02)
    partition.add_argument("--time-budget", type=float, default=300.0)
    partition.add_argument("--solve-limit", type=float, default=30.0)
    partition.add_argument("--backend", default="highs",
                           choices=("highs", "bnb", "portfolio"),
                           help="ILP backend; 'portfolio' races highs "
                           "and bnb per window solve")
    partition.add_argument("--no-cache", action="store_true",
                           help="disable solve memoization")
    _add_scenario_arguments(partition)
    partition.add_argument("--telemetry-json", default=None,
                           help="write execution-layer telemetry "
                           "(backend wins, cache hits, per-solve stats) "
                           "as JSON")
    partition.add_argument("--trace", action="store_true",
                           help="print the iteration trace")
    partition.add_argument("--report", action="store_true",
                           help="print per-partition utilization")
    partition.add_argument("--cluster", action="store_true",
                           help="merge linear task chains before solving "
                           "(smaller ILP; chains stay co-located)")
    partition.add_argument("--out-json", default=None,
                           help="write the assignment as JSON")
    partition.add_argument("--out-dot", default=None,
                           help="write a partition-clustered DOT file")
    partition.add_argument("--trace-jsonl", default=None,
                           help="record structured trace events (spans, "
                           "backend races, cache hits) as JSONL; inspect "
                           "with 'repro-tp trace report'")
    partition.add_argument("--trace-chrome", default=None,
                           help="write a Chrome trace-event-format JSON "
                           "for chrome://tracing / Perfetto")
    partition.add_argument("--metrics-json", default=None,
                           help="record labeled counters/histograms "
                           "(window solves, backend races, cache tiers) "
                           "and write the snapshot as JSON; inspect with "
                           "'repro-tp metrics report'")
    partition.set_defaults(func=_cmd_partition)

    def _add_service_arguments(sub: argparse.ArgumentParser) -> None:
        _add_device_arguments(sub)
        sub.add_argument(
            "--workers", type=int, default=2,
            help="shard worker processes; 0 runs inline "
            "(deterministic, no subprocesses), default 2",
        )
        sub.add_argument(
            "--cache", default=None,
            help="persistent solve-cache SQLite file shared by all "
            "workers and requests",
        )
        sub.add_argument("--delta", type=float, default=None,
                         help="latency tolerance (absolute)")
        sub.add_argument("--time-budget", type=float, default=300.0)
        sub.add_argument("--solve-limit", type=float, default=30.0)
        sub.add_argument("--trace", action="store_true",
                         help="include the iteration trace in each "
                         "outcome payload")
        sub.add_argument("--metrics-json", default=None,
                         help="write the merged service+worker metrics "
                         "snapshot as JSON on exit; inspect with "
                         "'repro-tp metrics report'")

    batch = subparsers.add_parser(
        "batch",
        help="solve a batch of partitioning requests via the service",
        description="Read a JSON list of requests (each an object with "
        "'graph' — a task-graph JSON path or inline payload — and "
        "optional 'processor'/'config' overrides in the service wire "
        "format), solve them concurrently over a shard worker pool, and "
        "emit the outcomes as JSON.  Exit 0 when every request is "
        "feasible, 1 otherwise.",
    )
    batch.add_argument("requests", help="JSON file with a list of requests")
    _add_service_arguments(batch)
    batch.add_argument("-o", "--output", default=None,
                       help="write outcomes to this file instead of stdout")
    batch.set_defaults(func=_cmd_batch)

    serve = subparsers.add_parser(
        "serve",
        help="JSONL request/response partitioning loop on stdin/stdout",
        description="Read one request object per stdin line (same shape "
        "as 'batch' entries), write one outcome object per stdout line. "
        "A blank line or EOF ends the session.",
    )
    _add_service_arguments(serve)
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve live metrics over HTTP on this port (0 picks a free "
        "one; the chosen URL is printed to stderr): Prometheus text on "
        "/metrics, snapshot JSON on /metrics.json",
    )
    serve.set_defaults(func=_cmd_serve)

    bounds_cmd = subparsers.add_parser(
        "bounds", help="print Section 3.1 bounds without solving"
    )
    bounds_cmd.add_argument("graph")
    _add_device_arguments(bounds_cmd)
    bounds_cmd.set_defaults(func=_cmd_bounds)

    generate = subparsers.add_parser(
        "generate", help="emit a synthetic task graph as JSON"
    )
    generate.add_argument(
        "kind",
        choices=("layered", "fork-join", "series-parallel", "random"),
    )
    generate.add_argument("--levels", type=int, default=3)
    generate.add_argument("--per-level", type=int, default=3)
    generate.add_argument("--branches", type=int, default=3)
    generate.add_argument("--branch-length", type=int, default=2)
    generate.add_argument("--depth", type=int, default=3)
    generate.add_argument("--tasks", type=int, default=10)
    generate.add_argument("--density", type=float, default=0.2)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("-o", "--output", default=None)
    generate.set_defaults(func=_cmd_generate)

    estimate = subparsers.add_parser(
        "estimate", help="estimate design points for a DFG template"
    )
    estimate.add_argument(
        "template",
        choices=("vector-product", "filter-section", "fir"),
    )
    estimate.add_argument("--length", type=int, default=4,
                          help="vector length / tap count")
    estimate.add_argument("--data-width", type=int, default=8)
    estimate.add_argument("--max-points", type=int, default=6)
    estimate.set_defaults(func=_cmd_estimate)

    curve = subparsers.add_parser(
        "curve",
        help="map the partition-count/latency trade-off curve",
    )
    curve.add_argument("graph")
    _add_device_arguments(curve)
    curve.add_argument("--min-n", type=int, default=None)
    curve.add_argument("--max-n", type=int, default=None)
    curve.add_argument("--delta", type=float, default=None)
    curve.add_argument("--solve-limit", type=float, default=15.0)
    curve.set_defaults(func=_cmd_curve)

    diagnose = subparsers.add_parser(
        "diagnose",
        help="explain why a graph/device/partition-count combination "
        "has no solution",
    )
    diagnose.add_argument("graph")
    _add_device_arguments(diagnose)
    diagnose.add_argument("--partitions", "-n", type=int, required=True)
    diagnose.add_argument(
        "--d-max", type=float, default=None,
        help="latency upper bound incl. overhead; default MaxLatency(N)",
    )
    diagnose.add_argument("--solve-limit", type=float, default=30.0)
    diagnose.set_defaults(func=_cmd_diagnose)

    analyze = subparsers.add_parser(
        "analyze",
        help="run the pre-solve model analyzer without solving",
        description="Build the window model and run the structural and "
        "paper-conformance analyzer passes (repro.analysis) without "
        "invoking any solver backend.  Exit codes: 0 = no failing "
        "diagnostics, 2 = usage/input error, 3 = diagnostics found at "
        "the failing severity (errors; with --strict also warnings).",
    )
    analyze.add_argument("graph", help="task graph JSON file")
    _add_device_arguments(analyze)
    analyze.add_argument("--partitions", "-n", type=int, required=True)
    analyze.add_argument(
        "--d-max", type=float, default=None,
        help="latency upper bound incl. overhead; default MaxLatency(N)",
    )
    analyze.add_argument(
        "--d-min", type=float, default=0.0,
        help="latency lower bound (adds the eq (10) window row when > 0)",
    )
    _add_scenario_arguments(analyze)
    analyze.add_argument("--json", action="store_true",
                         help="emit the report as JSON")
    analyze.add_argument("--strict", action="store_true",
                         help="exit 3 on warnings too, not just errors")
    analyze.set_defaults(func=_cmd_analyze)

    table = subparsers.add_parser(
        "table", help="regenerate one of the paper's tables"
    )
    table.add_argument("number", type=int, choices=range(1, 9))
    table.add_argument("--solve-limit", type=float, default=15.0)
    table.add_argument("--time-budget", type=float, default=300.0)
    table.set_defaults(func=_cmd_table)

    trace = subparsers.add_parser(
        "trace", help="inspect a recorded trace (JSONL event file)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    report = trace_sub.add_parser(
        "report", help="print the phase profile and span tree"
    )
    report.add_argument("file", help="JSONL event file (--trace-jsonl)")
    report.add_argument("--top", type=int, default=15,
                        help="number of phases to show, default 15")
    report.add_argument("--no-tree", action="store_true",
                        help="skip the span tree")
    report.add_argument("--depth", type=int, default=None,
                        help="maximum span-tree depth")
    report.set_defaults(func=_cmd_trace_report)
    export = trace_sub.add_parser(
        "export-chrome",
        help="convert a JSONL event file to Chrome trace-event JSON",
    )
    export.add_argument("file", help="JSONL event file (--trace-jsonl)")
    export.add_argument("output", help="Chrome trace JSON to write")
    export.set_defaults(func=_cmd_trace_export)

    metrics = subparsers.add_parser(
        "metrics", help="inspect recorded metrics snapshots"
    )
    metrics_sub = metrics.add_subparsers(dest="metrics_command", required=True)
    metrics_report = metrics_sub.add_parser(
        "report",
        help="merge and pretty-print metrics snapshots (--metrics-json)",
        description="Read one or more metrics snapshot files (a JSON "
        "object, a JSON list, or JSONL with one snapshot per line), "
        "merge them — merging is commutative, so file order does not "
        "matter — and print the result.  Exit 1 when no metrics were "
        "recorded.",
    )
    metrics_report.add_argument(
        "files", nargs="+", help="snapshot JSON/JSONL files (--metrics-json)"
    )
    metrics_report.add_argument(
        "--prom", action="store_true",
        help="emit Prometheus text exposition instead of the table",
    )
    metrics_report.add_argument(
        "--json", action="store_true",
        help="emit the merged snapshot as JSON instead of the table",
    )
    metrics_report.set_defaults(func=_cmd_metrics_report)

    lint = subparsers.add_parser(
        "lint",
        help="run the repo's scope-aware static analysis (RL001-RL009)",
        description="Scope-aware static analysis over the repo sources: "
        "compiled-model immutability, portfolio/process-pool worker "
        "discipline, async non-blocking, fingerprint determinism and "
        "scenario-builder purity.  Rule catalog: docs/staticcheck.md.  "
        "Exit codes: 0 = clean, 1 = active findings, 2 = usage/IO "
        "error.",
    )
    staticcheck_cli.add_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
