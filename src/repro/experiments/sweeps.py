"""Parameter sweeps: the paper's Section 2 motivating experiment.

The area-latency trade-off argument of Section 2: with a reconfiguration
time far above task latencies, minimizing the number of temporal
partitions minimizes overall latency; with a tiny one, *increasing* the
partition count can win because larger (faster) design points fit.
:func:`reconfiguration_sweep` runs the combined search across a range of
``C_T`` values and reports the chosen partition counts and latencies, so
the crossover is measurable instead of anecdotal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.processor import ReconfigurableProcessor
from repro.core import (
    FormulationOptions,
    RefinementConfig,
    SolverSettings,
    refine_partitions_bound,
)
from repro.core.heuristics import greedy_partition
from repro.experiments.report import TextTable
from repro.taskgraph.graph import TaskGraph

__all__ = ["SweepPoint", "reconfiguration_sweep", "sweep_table"]


@dataclass(frozen=True)
class SweepPoint:
    """Result of the search at one reconfiguration time."""

    reconfiguration_time: float
    partitions: int | None
    total_latency: float | None
    execution_latency: float | None
    greedy_partitions: int
    greedy_latency: float


def reconfiguration_sweep(
    graph: TaskGraph,
    base_processor: ReconfigurableProcessor,
    reconfiguration_times: tuple[float, ...],
    config: RefinementConfig | None = None,
    settings: SolverSettings | None = None,
    options: FormulationOptions | None = None,
) -> list[SweepPoint]:
    """Run the combined search at each ``C_T`` and collect the outcomes.

    The greedy min-area baseline is evaluated alongside: its partition
    count is ``C_T``-independent, which is exactly why it loses at the
    extremes.
    """
    config = config or RefinementConfig(gamma=1, delta_fraction=0.03)
    settings = settings or SolverSettings(time_limit=15.0)
    points: list[SweepPoint] = []
    for c_t in reconfiguration_times:
        processor = base_processor.with_reconfiguration_time(c_t)
        result = refine_partitions_bound(
            graph, processor, config=config, settings=settings,
            options=options,
        )
        greedy = greedy_partition(graph, processor, "min_area").design
        points.append(
            SweepPoint(
                reconfiguration_time=c_t,
                partitions=(
                    None
                    if result.design is None
                    else result.design.num_partitions_used
                ),
                total_latency=result.achieved,
                execution_latency=(
                    None
                    if result.design is None
                    else result.design.execution_latency()
                ),
                greedy_partitions=greedy.num_partitions_used,
                greedy_latency=greedy.total_latency(processor),
            )
        )
    return points


def sweep_table(points: list[SweepPoint], title: str) -> TextTable:
    """Render sweep results in the crossover-study format."""
    table = TextTable(
        title,
        (
            "C_T (ns)",
            "ILP N",
            "ILP latency (ns)",
            "ILP exec (ns)",
            "greedy N",
            "greedy latency (ns)",
        ),
    )
    for point in points:
        table.add_row(
            point.reconfiguration_time,
            point.partitions,
            point.total_latency,
            point.execution_latency,
            point.greedy_partitions,
            point.greedy_latency,
        )
    return table
