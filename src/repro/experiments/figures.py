"""Regeneration of the paper's figure content.

Figures 1 and 2 are the algorithms themselves (implemented in
:mod:`repro.core.reduce_latency` / ``refine_partitions``); the remaining
figures are worked examples that this module reconstructs as executable
artifacts:

* **Figure 3** — how the ``w`` variables model data transfer across
  partition boundaries: a five-task example is partitioned by hand, the
  analytic boundary occupancy is computed, and the ILP (with the
  assignment pinned) is solved to show its ``w`` variables reproduce the
  same crossings.
* **Figure 4** — per-partition latency: three paths (350/400/150 ns) in
  partition 1 give ``d_1 = 400``; partition 2 holds a 300 ns path.
* **Figures 5 and 6** — the AR-filter and DCT task graphs, exported as
  Graphviz DOT with design-point annotations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.processor import ReconfigurableProcessor
from repro.core.formulation import FormulationOptions, build_model
from repro.core.solution import PartitionedDesign
from repro.experiments.report import TextTable
from repro.taskgraph.designpoint import DesignPoint
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.io import to_dot
from repro.taskgraph.library import ar_filter, dct_4x4

__all__ = [
    "Fig3Result",
    "figure3_memory_model",
    "Fig4Result",
    "figure4_partition_latency",
    "figure5_ar_graph",
    "figure6_dct_graph",
]


def _single_point(area: float, latency: float) -> tuple[DesignPoint, ...]:
    return (DesignPoint(area=area, latency=latency, name="dp1"),)


@dataclass
class Fig3Result:
    """Figure 3 reconstruction: crossings analytically and via the ILP."""

    design: PartitionedDesign
    analytic_memory: dict[int, float]       # boundary -> data units
    ilp_w: dict[tuple[int, str, str], float]
    table: TextTable

    @property
    def consistent(self) -> bool:
        """ILP crossings reproduce the analytic boundary occupancy."""
        graph = self.design.graph
        for boundary, expected in self.analytic_memory.items():
            if boundary == 1:
                continue  # no w variables exist for the first partition
            from_w = sum(
                graph.data_volume(src, dst) * value
                for (p, src, dst), value in self.ilp_w.items()
                if p == boundary
            )
            if abs(from_w - expected) > 1e-6:
                return False
        return True


def figure3_memory_model() -> Fig3Result:
    """Rebuild Figure 3's crossing example and check the ``w`` semantics."""
    graph = TaskGraph("fig3")
    for name in ("t1", "t2", "t3", "t4", "t5"):
        graph.add_task(name, _single_point(100, 50))
    graph.add_edge("t1", "t3", 4)
    graph.add_edge("t2", "t3", 6)
    graph.add_edge("t1", "t4", 2)   # crosses two boundaries
    graph.add_edge("t3", "t5", 8)
    graph.add_edge("t4", "t5", 3)

    assignment = {"t1": 1, "t2": 1, "t3": 2, "t4": 3, "t5": 3}
    design = PartitionedDesign.from_labels(
        graph, {name: (p, "dp1") for name, p in assignment.items()}
    )
    analytic = {
        p: design.memory_at_boundary(p, include_env=False)
        for p in range(1, 4)
    }

    # Pin the assignment inside the ILP and read back the w variables.
    processor = ReconfigurableProcessor(
        resource_capacity=300, memory_capacity=64, reconfiguration_time=10
    )
    tp = build_model(
        graph,
        processor,
        num_partitions=3,
        d_max=1e9,
        options=FormulationOptions(two_sided_w=True),
    )
    for name, partition in assignment.items():
        tp.model.add_constr(
            tp.model.variable(f"Y[{name},{partition},1]") >= 1,
            name=f"pin[{name}]",
        )
    solution = tp.solve(backend="highs", first_feasible=True)
    if not solution.status.has_solution:
        raise RuntimeError("figure 3 pinned model unexpectedly infeasible")
    ilp_w = {
        (p, src, dst): solution.values[f"w[{p},{src},{dst}]"]
        for p in (2, 3)
        for src, dst, _v in graph.edges
    }

    table = TextTable(
        title="Figure 3: data transfer across temporal partition boundaries",
        columns=("Boundary p", "Crossing edges", "Memory (units)"),
    )
    for p in range(2, 4):
        crossing = [
            f"{src}->{dst} ({volume:g})"
            for src, dst, volume in graph.edges
            if assignment[src] < p <= assignment[dst]
        ]
        table.add_row(p, ", ".join(crossing), analytic[p])
    return Fig3Result(design, analytic, ilp_w, table)


@dataclass
class Fig4Result:
    """Figure 4 reconstruction: per-partition path latencies."""

    design: PartitionedDesign
    d1: float
    d2: float
    table: TextTable


def figure4_partition_latency() -> Fig4Result:
    """Rebuild Figure 4: d_1 = max(350, 400, 150) = 400, d_2 = 300."""
    graph = TaskGraph("fig4")
    graph.add_task("a1", _single_point(50, 100))
    graph.add_task("a2", _single_point(50, 250))
    graph.add_task("b1", _single_point(50, 150))
    graph.add_task("b2", _single_point(50, 250))
    graph.add_task("c1", _single_point(50, 150))
    graph.add_task("x", _single_point(50, 300))
    graph.add_edge("a1", "a2", 1)
    graph.add_edge("b1", "b2", 1)
    graph.add_edge("a2", "x", 1)
    graph.add_edge("b2", "x", 1)
    graph.add_edge("c1", "x", 1)

    design = PartitionedDesign.from_labels(
        graph,
        {
            "a1": (1, "dp1"),
            "a2": (1, "dp1"),
            "b1": (1, "dp1"),
            "b2": (1, "dp1"),
            "c1": (1, "dp1"),
            "x": (2, "dp1"),
        },
    )
    d1 = design.partition_latency(1)
    d2 = design.partition_latency(2)
    table = TextTable(
        title="Figure 4: latency of a temporal partition = longest mapped path",
        columns=("Partition", "Paths (ns)", "d_p (ns)"),
    )
    table.add_row(1, "a1+a2=350, b1+b2=400, c1=150", d1)
    table.add_row(2, "x=300", d2)
    return Fig4Result(design, d1, d2, table)


def figure5_ar_graph() -> str:
    """Figure 5: the AR-filter task graph as DOT."""
    return to_dot(ar_filter())


def figure6_dct_graph() -> str:
    """Figure 6: the DCT task graph as DOT."""
    return to_dot(dct_4x4())
