"""Experiment definitions and execution.

Each of the paper's DCT experiments (Tables 3-8) is one run of the
combined search with a specific ``(R_max, C_T, delta, alpha, gamma)``
tuple.  :class:`DctExperiment` captures that tuple; :func:`run_experiment`
executes it and packages the iteration trace in table-ready form.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.arch.processor import ReconfigurableProcessor
from repro.core import (
    FormulationOptions,
    RefinementConfig,
    SolverSettings,
    refine_partitions_bound,
)
from repro.core.refine_partitions import RefinementResult
from repro.experiments.report import TextTable
from repro.taskgraph.graph import TaskGraph

__all__ = ["DctExperiment", "ExperimentResult", "run_experiment"]

#: Small reconfiguration overhead (time-multiplexed FPGA regime), ns.
SMALL_CT = 30.0
#: Large reconfiguration overhead (WILDFORCE regime): 10 ms in ns.
LARGE_CT = 10e6


@dataclass(frozen=True)
class DctExperiment:
    """Parameters of one paper experiment."""

    table: str                       # e.g. "Table 3"
    resource_capacity: float
    reconfiguration_time: float
    delta: float
    alpha: int = 0
    gamma: int = 1
    memory_capacity: float = 2048.0
    solver: SolverSettings = field(default_factory=SolverSettings)
    time_budget: float | None = 600.0

    def processor(self) -> ReconfigurableProcessor:
        return ReconfigurableProcessor(
            resource_capacity=self.resource_capacity,
            memory_capacity=self.memory_capacity,
            reconfiguration_time=self.reconfiguration_time,
            name=f"R{self.resource_capacity:g}_CT{self.reconfiguration_time:g}",
        )

    def config(self) -> RefinementConfig:
        return RefinementConfig(
            alpha=self.alpha,
            gamma=self.gamma,
            delta=self.delta,
            time_budget=self.time_budget,
        )


@dataclass
class ExperimentResult:
    """Search outcome plus table-ready presentation."""

    experiment: DctExperiment
    result: RefinementResult
    wall_time: float

    @property
    def best_latency(self) -> float | None:
        return self.result.achieved

    @property
    def best_partitions(self) -> int | None:
        if self.result.design is None:
            return None
        return self.result.design.num_partitions_used

    @property
    def iterations(self) -> int:
        return len(self.result.trace)

    @property
    def telemetry(self):
        """Execution-layer metrics of the run (``RunTelemetry | None``)."""
        return self.result.telemetry

    @property
    def degraded(self) -> bool:
        return self.result.degraded

    def table(self, include_overhead: bool = False) -> TextTable:
        """The paper-shaped iteration table.

        By default latency columns exclude the ``N * C_T`` overhead
        ("Bound (without N x C_T)") exactly as the paper prints them.
        """
        c_t = (
            0.0
            if include_overhead
            else self.experiment.reconfiguration_time
        )
        exp = self.experiment
        table = TextTable(
            title=(
                f"{exp.table}: DCT, R_max={exp.resource_capacity:g}, "
                f"C_T={exp.reconfiguration_time:g} ns, "
                f"delta={exp.delta:g}, alpha={exp.alpha}, gamma={exp.gamma}"
            ),
            columns=("N", "I", "D_min (ns)", "D_max (ns)", "D_a (ns)"),
        )
        for record in self.result.trace:
            n, i, d_min, d_max, achieved = record.row(c_t)
            table.add_row(n, i, round(d_min, 1), round(d_max, 1), achieved)
        best = self.best_latency
        note = "infeasible" if best is None else (
            f"best D_a = {best:,.0f} ns at N = {self.best_partitions} "
            f"({self.iterations} ILP solves, {self.wall_time:.1f}s)"
        )
        if self.result.stopped_by_min_latency_cut:
            note += "; stopped early: MinLatency(N) >= D_a"
        if self.result.degraded:
            note += "; degraded: heuristic fallback used"
        table.footer = note
        return table


def run_experiment(
    experiment: DctExperiment,
    graph: TaskGraph,
    options: FormulationOptions | None = None,
    tracer=None,
) -> ExperimentResult:
    """Execute one experiment on ``graph`` and collect its trace.

    ``tracer`` (:class:`repro.obs.Tracer`) wraps the run in an
    ``experiment`` span; it is installed on the solver settings, so the
    whole pipeline below records into it.
    """
    settings = experiment.solver
    if tracer is not None:
        from dataclasses import replace as _replace

        settings = _replace(settings, tracer=tracer)
    from repro.obs.tracer import as_tracer

    start = time.perf_counter()
    with as_tracer(tracer).span(
        "experiment",
        table=experiment.table,
        r_max=experiment.resource_capacity,
        c_t=experiment.reconfiguration_time,
        delta=experiment.delta,
    ):
        result = refine_partitions_bound(
            graph,
            experiment.processor(),
            config=experiment.config(),
            options=options,
            settings=settings,
        )
    return ExperimentResult(
        experiment=experiment,
        result=result,
        wall_time=time.perf_counter() - start,
    )
