"""Experiment harness: regenerate every table and figure of the paper."""

from repro.experiments.figures import (
    Fig3Result,
    Fig4Result,
    figure3_memory_model,
    figure4_partition_latency,
    figure5_ar_graph,
    figure6_dct_graph,
)
from repro.experiments.report import TextTable, format_value
from repro.experiments.runner import (
    LARGE_CT,
    SMALL_CT,
    DctExperiment,
    ExperimentResult,
    run_experiment,
)
from repro.experiments.sweeps import (
    SweepPoint,
    reconfiguration_sweep,
    sweep_table,
)
from repro.experiments.tables import (
    DCT_EXPERIMENTS,
    Table1Result,
    ar_processor,
    table1_ar_filter,
    table2_design_points,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)

__all__ = [
    "DCT_EXPERIMENTS",
    "DctExperiment",
    "ExperimentResult",
    "Fig3Result",
    "Fig4Result",
    "LARGE_CT",
    "SMALL_CT",
    "SweepPoint",
    "Table1Result",
    "TextTable",
    "reconfiguration_sweep",
    "sweep_table",
    "ar_processor",
    "figure3_memory_model",
    "figure4_partition_latency",
    "figure5_ar_graph",
    "figure6_dct_graph",
    "format_value",
    "run_experiment",
    "table1_ar_filter",
    "table2_design_points",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
]
