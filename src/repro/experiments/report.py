"""Compatibility shim: the table renderer lives in :mod:`repro.report`.

Kept so experiment code (and downstream users) can keep importing
``repro.experiments.report``; the implementation moved up a level so that
core modules can render tables without importing the experiments package
(which imports core — a cycle).
"""

from repro.report import TextTable, format_value

__all__ = ["TextTable", "format_value"]
