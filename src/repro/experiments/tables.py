"""Regeneration of every table in the paper's evaluation section.

========  ==================================================================
Table 1   AR filter: the iterative procedure matches the optimal ILP
Table 2   design points of the DCT task kinds
Table 3   DCT, ``R_max=576``, small ``C_T``, ``delta=200``
Table 4   DCT, ``R_max=576``, ``C_T=10 ms``, ``alpha=0``
Table 5   DCT, ``R_max=1024``, ``delta=800``, small ``C_T``, ``alpha=1``
Table 6   DCT, ``R_max=1024``, ``delta=800``, ``C_T=10 ms``, ``alpha=0``
Table 7   DCT, ``R_max=1024``, ``delta=100``, small ``C_T``, ``alpha=1``
Table 8   DCT, ``R_max=1024``, ``delta=100``, ``C_T=10 ms``, ``alpha=0``
========  ==================================================================

Each function returns the rendered :class:`TextTable` plus the raw result
objects so tests and benches can assert on the numbers, not the text.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.processor import ReconfigurableProcessor
from repro.core import (
    FormulationOptions,
    RefinementConfig,
    SolverSettings,
    refine_partitions_bound,
    solve_optimal,
)
from repro.experiments.report import TextTable
from repro.experiments.runner import (
    LARGE_CT,
    SMALL_CT,
    DctExperiment,
    ExperimentResult,
    run_experiment,
)
from repro.taskgraph.library import (
    DCT_T1_POINTS,
    DCT_T2_POINTS,
    ar_filter,
    dct_4x4,
)

__all__ = [
    "Table1Result",
    "table1_ar_filter",
    "table2_design_points",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "DCT_EXPERIMENTS",
    "ar_processor",
]


def ar_processor() -> ReconfigurableProcessor:
    """The device used for the AR-filter study (Table 1)."""
    return ReconfigurableProcessor(
        resource_capacity=400,
        memory_capacity=128,
        reconfiguration_time=20.0,
        name="ar_device",
    )


@dataclass
class Table1Result:
    """Iterative vs optimal on the AR filter."""

    iterative_latency: float
    optimal_latency: float
    iterative_solves: int
    table: TextTable

    @property
    def matches(self) -> bool:
        return abs(self.iterative_latency - self.optimal_latency) < 1e-6


def table1_ar_filter(
    settings: SolverSettings | None = None,
) -> Table1Result:
    """Table 1: the iterative procedure reaches the optimal latency."""
    graph = ar_filter()
    processor = ar_processor()
    settings = settings or SolverSettings()
    config = RefinementConfig(alpha=0, gamma=1, delta=10.0)
    iterative = refine_partitions_bound(
        graph, processor, config=config, settings=settings
    )
    optimal = solve_optimal(graph, processor)
    if iterative.achieved is None or optimal.latency is None:
        raise RuntimeError("AR filter study unexpectedly infeasible")

    table = TextTable(
        title=(
            "Table 1: AR filter, iterative search vs optimal ILP "
            f"(R_max={processor.resource_capacity:g}, "
            f"C_T={processor.reconfiguration_time:g} ns, delta=10)"
        ),
        columns=("N", "I", "D_min (ns)", "D_max (ns)", "D_a (ns)"),
    )
    for record in iterative.trace:
        n, i, d_min, d_max, achieved = record.row(
            processor.reconfiguration_time
        )
        table.add_row(n, i, round(d_min, 1), round(d_max, 1), achieved)
    table.footer = (
        f"iterative D_a = {iterative.achieved:,.0f} ns; "
        f"optimal = {optimal.latency:,.0f} ns "
        f"({'match' if abs(iterative.achieved - optimal.latency) < 1e-6 else 'MISMATCH'})"
    )
    return Table1Result(
        iterative_latency=iterative.achieved,
        optimal_latency=optimal.latency,
        iterative_solves=len(iterative.trace),
        table=table,
    )


def table2_design_points() -> TextTable:
    """Table 2: the design points of the two DCT task kinds."""
    table = TextTable(
        title="Table 2: design points for DCT tasks",
        columns=("Task", "Design point", "Module set", "Area", "Latency (ns)"),
    )
    for kind, points in (("T1", DCT_T1_POINTS), ("T2", DCT_T2_POINTS)):
        for dp in points:
            table.add_row(
                kind, dp.name, str(dp.module_set), dp.area, dp.latency
            )
    graph = dct_4x4()
    table.footer = (
        f"32 tasks (16 x T1, 16 x T2); sum(min area) = "
        f"{graph.total_min_area():,.0f}, sum(max area) = "
        f"{graph.total_max_area():,.0f}, serial worst case = "
        f"{graph.total_max_latency():,.0f} ns"
    )
    return table


def _dct_experiment(
    table: str,
    resource_capacity: float,
    reconfiguration_time: float,
    delta: float,
    alpha: int,
    settings: SolverSettings | None,
    time_budget: float | None,
) -> ExperimentResult:
    experiment = DctExperiment(
        table=table,
        resource_capacity=resource_capacity,
        reconfiguration_time=reconfiguration_time,
        delta=delta,
        alpha=alpha,
        gamma=1,
        solver=settings or SolverSettings(),
        time_budget=time_budget,
    )
    # Symmetry breaking only removes permutations of interchangeable DCT
    # tasks; it changes no latency but makes infeasibility proofs tractable.
    options = FormulationOptions(symmetry_breaking=True)
    return run_experiment(experiment, dct_4x4(), options=options)


def table3(settings=None, time_budget=600.0) -> ExperimentResult:
    """DCT, R_max=576, C_T=30 ns, delta=200, alpha=0, gamma=1."""
    return _dct_experiment(
        "Table 3", 576, SMALL_CT, 200.0, 0, settings, time_budget
    )


def table4(settings=None, time_budget=600.0) -> ExperimentResult:
    """DCT, R_max=576, C_T=10 ms, delta=200, alpha=0, gamma=1."""
    return _dct_experiment(
        "Table 4", 576, LARGE_CT, 200.0, 0, settings, time_budget
    )


def table5(settings=None, time_budget=600.0) -> ExperimentResult:
    """DCT, R_max=1024, C_T=30 ns, delta=800, alpha=1, gamma=1."""
    return _dct_experiment(
        "Table 5", 1024, SMALL_CT, 800.0, 1, settings, time_budget
    )


def table6(settings=None, time_budget=600.0) -> ExperimentResult:
    """DCT, R_max=1024, C_T=10 ms, delta=800, alpha=0, gamma=1."""
    return _dct_experiment(
        "Table 6", 1024, LARGE_CT, 800.0, 0, settings, time_budget
    )


def table7(settings=None, time_budget=600.0) -> ExperimentResult:
    """DCT, R_max=1024, C_T=30 ns, delta=100, alpha=1, gamma=1."""
    return _dct_experiment(
        "Table 7", 1024, SMALL_CT, 100.0, 1, settings, time_budget
    )


def table8(settings=None, time_budget=600.0) -> ExperimentResult:
    """DCT, R_max=1024, C_T=10 ms, delta=100, alpha=0, gamma=1."""
    return _dct_experiment(
        "Table 8", 1024, LARGE_CT, 100.0, 0, settings, time_budget
    )


#: All six DCT sweeps, keyed by paper table number.
DCT_EXPERIMENTS = {
    3: table3,
    4: table4,
    5: table5,
    6: table6,
    7: table7,
    8: table8,
}
