"""Temporal partitioning with design space exploration (DATE 1999).

A from-scratch reproduction of Kaul & Vemuri, *"Temporal Partitioning
combined with Design Space Exploration for Latency Minimization of
Run-Time Reconfigured Designs"*, DATE 1999.

Subpackages
-----------
``repro.core``
    The paper's contribution: the combined ILP formulation, the
    ``Reduce_Latency`` / ``Refine_Partitions_Bound`` iterative search,
    bounds, baselines, and the optimality oracle.
``repro.ilp``
    A self-contained MILP stack (modeling layer, simplex, branch & bound,
    plus a scipy/HiGHS backend) standing in for CPLEX.
``repro.taskgraph``
    Task graphs, design points, the paper's AR-filter and DCT benchmarks,
    synthetic generators, and serialization.
``repro.hls``
    A high-level-synthesis estimator that produces design points from
    operation-level data-flow graphs (the paper's estimation tool).
``repro.arch``
    The reconfigurable-processor model and an execution-timeline
    simulator used as an independent semantics oracle.
``repro.experiments``
    The harness that regenerates every table and figure of the paper.
``repro.service``
    Partition-as-a-service: the async batch facade
    (:class:`repro.service.PartitionService`), process-pool sharding of
    the partition-space search, and the persistent disk solve cache
    (``SolverSettings(cache_path=...)``).
``repro.obs``
    Span tracing, the structured event stream, Chrome-trace export and
    phase profiling (attach a :class:`repro.obs.Tracer` via
    ``SolverSettings(tracer=...)``).
``repro.analysis``
    The pre-solve model analyzer: structural and paper-conformance
    diagnostics over compiled models (enable with
    ``SolverSettings(analyze="warn")`` or run ``repro-tp analyze``;
    catalog in ``docs/analysis.md``).

Quickstart::

    from repro import PartitionRequest, TemporalPartitioner
    from repro.arch import time_multiplexed
    from repro.taskgraph import dct_4x4

    partitioner = TemporalPartitioner(time_multiplexed(resource_capacity=576))
    outcome = partitioner.solve(PartitionRequest(graph=dct_4x4()))
    print(outcome.design.summary(partitioner.processor))
"""

from repro.analysis import AnalysisReport, ModelAnalysisError, analyze_model
from repro.core import (
    OUTCOME_SCHEMA_VERSION,
    FormulationOptions,
    PartitionedDesign,
    PartitionerConfig,
    PartitionRequest,
    PartitioningOutcome,
    RefinementConfig,
    SolverSettings,
    TemporalPartitioner,
)
from repro.obs import JsonlSink, MemorySink, Tracer
from repro.service import PartitionService
from repro.solve import DiskSolveCache, RunTelemetry, SolveCache, SolveExecutor

__version__ = "1.0.0"

__all__ = [
    "AnalysisReport",
    "DiskSolveCache",
    "FormulationOptions",
    "JsonlSink",
    "MemorySink",
    "ModelAnalysisError",
    "OUTCOME_SCHEMA_VERSION",
    "PartitionService",
    "PartitionedDesign",
    "PartitionerConfig",
    "PartitionRequest",
    "PartitioningOutcome",
    "RefinementConfig",
    "RunTelemetry",
    "SolveCache",
    "SolveExecutor",
    "SolverSettings",
    "TemporalPartitioner",
    "Tracer",
    "__version__",
    "analyze_model",
]
