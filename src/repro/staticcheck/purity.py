"""Shared purity queries used by the concurrency and contract packs.

RL006 (process-pool workers) and RL009 (constraint-family builders)
enforce the same underlying discipline — a function that must not
touch state outside its arguments — against different scopes.  The
queries here answer, for one function definition and its module's
symbol table:

* which statements write or mutate *module-level* state,
* which reads capture a *mutable module global* (a name bound to a
  list/dict/set at module level),
* which reads capture *enclosing-function* state (closure captures),
* which calls read wall clocks or random sources.
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "walk_function_body",
    "walk_own_body",
    "module_state_writes",
    "mutable_global_reads",
    "closure_captures",
    "nondeterministic_call",
    "MUTATING_METHODS",
]

#: Methods that mutate their receiver in place (list/dict/set/deque).
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "add", "discard", "setdefault", "sort", "reverse",
    "appendleft", "extendleft", "fill",
})

#: Wall-clock and RNG entry points, resolved through the symbol table
#: (so ``from time import perf_counter as tick`` is still caught).
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.date.today",
})

_RNG_PREFIXES = ("random.", "numpy.random.", "secrets.")
_RNG_EXACT = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})


def nondeterministic_call(qualname: str | None) -> str | None:
    """A short label when ``qualname`` reads a clock or random source."""
    if qualname is None:
        return None
    if qualname in _WALL_CLOCK:
        return "wall clock"
    if qualname in _RNG_EXACT or qualname.startswith(_RNG_PREFIXES):
        return "random source"
    return None


def walk_function_body(funcdef) -> Iterator[ast.AST]:
    """Every node in ``funcdef``'s body, including nested functions."""
    for stmt in funcdef.body:
        yield from ast.walk(stmt)


def walk_own_body(funcdef) -> Iterator[ast.AST]:
    """Nodes in ``funcdef``'s body, *excluding* nested def/lambda
    bodies — the async-blocking rule must not flag a sync helper
    defined inside an ``async def``."""
    stack = list(funcdef.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _resolves_to_module(ctx, name_node: ast.Name) -> bool:
    binding = ctx.scopes.resolve(name_node)
    return binding is not None and binding.scope.kind == "module"


def module_state_writes(ctx, funcdef) -> Iterator[tuple[ast.AST, str]]:
    """Statements in ``funcdef`` that write or mutate module state.

    Yields ``(node, description)``: ``global``/``nonlocal``
    declarations, subscript/attribute stores whose base is a module
    global, and in-place mutation method calls on module globals.
    """
    for node in walk_function_body(funcdef):
        if isinstance(node, ast.Global):
            yield node, f"'global {', '.join(node.names)}' declaration"
        elif isinstance(node, ast.Nonlocal):
            yield node, f"'nonlocal {', '.join(node.names)}' declaration"
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                base = target
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                if (base is not target and isinstance(base, ast.Name)
                        and _resolves_to_module(ctx, base)):
                    yield node, (
                        f"write through module global '{base.id}'"
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in MUTATING_METHODS
                    and isinstance(func.value, ast.Name)
                    and _resolves_to_module(ctx, func.value)):
                binding = ctx.scopes.resolve(func.value)
                if binding is not None and binding.kind in (
                        "assign", "comprehension"):
                    yield node, (
                        f"in-place '{func.value.id}.{func.attr}()' on a "
                        "module global"
                    )


def mutable_global_reads(ctx, funcdef) -> Iterator[tuple[ast.Name, str]]:
    """Reads in ``funcdef`` of module globals bound to mutable
    literals (lists/dicts/sets) — shared mutable state by definition."""
    for node in walk_function_body(funcdef):
        if not isinstance(node, ast.Name) or not isinstance(
                node.ctx, ast.Load):
            continue
        binding = ctx.scopes.resolve(node)
        if (binding is not None and binding.scope.kind == "module"
                and binding.is_mutable_literal):
            yield node, f"read of mutable module global '{node.id}'"


def closure_captures(ctx, funcdef) -> Iterator[tuple[ast.Name, str]]:
    """Reads in ``funcdef`` resolving to an *enclosing function's*
    locals — closure captures (only possible for nested functions)."""
    own_scope = ctx.scopes.scope_of(funcdef)
    if own_scope is None or own_scope.enclosing_function() is None:
        return
    for node in walk_function_body(funcdef):
        if not isinstance(node, ast.Name) or not isinstance(
                node.ctx, ast.Load):
            continue
        binding = ctx.scopes.resolve(node)
        if binding is None or binding.scope.kind != "function":
            continue
        # Captured: bound in a function scope that encloses (but is
        # not inside) the worker's own scope.
        scope = own_scope
        enclosing = False
        while scope is not None:
            scope = scope.parent
            if scope is binding.scope:
                enclosing = True
                break
        if enclosing:
            yield node, (
                f"closure capture of '{node.id}' from the enclosing "
                "function"
            )
