"""The scenario-contract rule pack: RL009.

PR 7's registry documents that every :class:`ConstraintFamily` builder
must be a pure function of its :class:`BuildContext` — the row-group
provenance, the template patch path and the golden-fingerprint identity
all assume that building the same scenario twice appends identical
rows.  This rule enforces the contract statically: builders (and the
``prepare``/``objective`` hooks of a :class:`ScenarioSpec`) must not
read or write module globals, perform IO, construct tracers/metrics,
or read clocks and random sources.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.findings import Finding, register_rule
from repro.staticcheck.purity import (
    module_state_writes,
    mutable_global_reads,
    nondeterministic_call,
    walk_function_body,
)

__all__: list[str] = []

#: IO entry points a pure builder must not touch.
_IO_CALLS = frozenset({"open", "print", "input"})
_IO_PREFIXES = ("os.", "sys.", "pathlib.", "shutil.", "socket.",
                "subprocess.", "urllib.", "io.")

#: Observability objects whose construction inside a builder forks the
#: run's tracer/metrics plumbing (they must be threaded via settings).
_OBS_CONSTRUCTORS = frozenset({
    "Tracer", "MetricsRegistry", "MetricsServer", "JsonlSink",
    "MemorySink",
})

#: Hook keyword arguments checked on each registry construction, by
#: callee class name.
_HOOK_KEYWORDS = {
    "ConstraintFamily": ("build",),
    "ScenarioSpec": ("prepare", "objective"),
}

#: Positional index of the ``build`` argument in
#: ``ConstraintFamily(id, build, ...)``.
_BUILD_POSITION = 1


def _callee_class(ctx, node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    else:
        return None
    return name if name in _HOOK_KEYWORDS else None


def _builder_defs(ctx) -> Iterator[tuple[ast.FunctionDef, str]]:
    """Locally defined functions used as family builders or scenario
    hooks, with the role they play."""
    seen: set[int] = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        callee = _callee_class(ctx, node)
        if callee is None:
            continue
        references: list[tuple[ast.expr, str]] = []
        if callee == "ConstraintFamily" and \
                len(node.args) > _BUILD_POSITION:
            references.append((node.args[_BUILD_POSITION], "build"))
        for kw in node.keywords:
            if kw.arg in _HOOK_KEYWORDS[callee]:
                references.append((kw.value, kw.arg))
        for reference, role in references:
            if isinstance(reference, ast.Lambda):
                continue  # lambdas are too small to hide impurity; skip
            if not isinstance(reference, ast.Name):
                continue
            binding = ctx.scopes.resolve(reference)
            if (binding is not None and binding.kind == "def"
                    and binding.node is not None
                    and id(binding.node) not in seen):
                seen.add(id(binding.node))
                yield binding.node, f"{callee}.{role}"


@register_rule(
    "RL009",
    title="constraint-family builders must be pure",
    severity="error",
    rationale=(
        "The scenario registry's row-group provenance, the template "
        "patch path and the golden-fingerprint identity all assume a "
        "builder appends identical rows for identical BuildContexts; "
        "module-global state, IO, tracer/metrics construction or "
        "clock/RNG reads inside a builder silently break that."
    ),
    fix_hint=(
        "Make the builder a pure function of its BuildContext: pass "
        "parameters through scenario params, thread observability via "
        "SolverSettings."
    ),
)
def _check_rl009(rule, ctx, project) -> Iterator[Finding]:
    for funcdef, role in _builder_defs(ctx):
        symbol = ctx.symbol_at(funcdef)
        label = f"scenario hook '{funcdef.name}' ({role})"
        for node, description in module_state_writes(ctx, funcdef):
            yield rule.finding(ctx, node, (
                f"{description} inside {label} — builders must be pure "
                "functions of their BuildContext"
            ), symbol=symbol)
        for node, description in mutable_global_reads(ctx, funcdef):
            yield rule.finding(ctx, node, (
                f"{description} inside {label} — pass values through "
                "scenario params on the BuildContext instead"
            ), symbol=symbol)
        for node in walk_function_body(funcdef):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualname(node.func)
            nondet = nondeterministic_call(qual)
            if nondet is not None:
                yield rule.finding(ctx, node, (
                    f"{nondet} read ('{qual}') inside {label} — "
                    "identical BuildContexts must build identical rows"
                ), symbol=symbol)
            elif qual is not None and (
                    qual in _IO_CALLS or qual.startswith(_IO_PREFIXES)):
                yield rule.finding(ctx, node, (
                    f"IO call '{qual}' inside {label} — builders must "
                    "not touch files, streams or the environment"
                ), symbol=symbol)
            else:
                name = qual.rsplit(".", 1)[-1] if qual else None
                if name in _OBS_CONSTRUCTORS:
                    yield rule.finding(ctx, node, (
                        f"'{name}' constructed inside {label} — "
                        "observability is threaded via SolverSettings, "
                        "never built in a family builder"
                    ), symbol=symbol)
