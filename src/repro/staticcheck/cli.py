"""The ``repro-tp lint`` subcommand (and the shim's entry point).

Exit codes mirror ``repro-tp analyze``'s documented convention:

* ``0`` — clean (no active findings; suppressed/baselined are fine),
* ``1`` — active findings,
* ``2`` — usage or IO error (bad paths, unreadable baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.staticcheck.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
)
from repro.staticcheck.emit import (
    FORMATS,
    render_json,
    render_sarif,
    render_text,
)
from repro.staticcheck.engine import DEFAULT_PATHS, check_paths
from repro.staticcheck.findings import iter_rules

__all__ = ["add_arguments", "run", "main"]

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags (shared by repro-tp and the shim)."""
    parser.add_argument(
        "paths", nargs="*", type=Path, default=None,
        help="files or directories to lint "
        f"(default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output", "-o", type=Path, default=None,
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline file (default: ./"
        f"{DEFAULT_BASELINE_NAME} when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the active findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also list suppressed and baselined findings (text format)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )


def _resolve_baseline(args: argparse.Namespace) -> Baseline | None:
    if args.no_baseline:
        return None
    path = args.baseline
    if path is None:
        default = Path(DEFAULT_BASELINE_NAME)
        if default.exists():
            path = default
    if path is None:
        return None
    return Baseline.load(path)


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation."""
    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.id}  [{rule.severity}]  {rule.title}")
            print(f"       why: {rule.rationale}")
            print(f"       fix: {rule.fix_hint}")
        return EXIT_OK
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        known = {rule.id for rule in iter_rules()}
        unknown = sorted(set(rules) - known)
        if unknown:
            print(f"error: unknown rule id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return EXIT_USAGE
    if args.write_baseline:
        baseline = None  # rebuilding it: the old contents are irrelevant
    else:
        try:
            baseline = _resolve_baseline(args)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
    try:
        result = check_paths(args.paths or None, rules=rules,
                             baseline=baseline)
    except (OSError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.write_baseline:
        target = args.baseline or Path(DEFAULT_BASELINE_NAME)
        Baseline.from_findings(result.active).write(target)
        print(
            f"wrote {len(result.active)} finding(s) to {target}",
            file=sys.stderr,
        )
        return EXIT_OK

    if args.format == "json":
        report = render_json(result.findings, result.files_checked)
    elif args.format == "sarif":
        report = render_sarif(result.findings, result.files_checked)
    else:
        report = render_text(result.findings, result.files_checked,
                             verbose=args.verbose)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(report + "\n")
        if args.format == "text":
            # Keep the one-line summary on the console too.
            print(report.splitlines()[-1])
    else:
        print(report)
    return EXIT_FINDINGS if result.active else EXIT_OK


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (used by the tools/repro_lint.py shim)."""
    parser = argparse.ArgumentParser(
        prog="repro-tp lint",
        description="Scope-aware repo static analysis (RL001-RL009): "
        "compiled-model immutability, portfolio/process-pool worker "
        "discipline, async non-blocking, fingerprint determinism and "
        "scenario-builder purity.  Exit codes: 0 = clean, 1 = active "
        "findings, 2 = usage/IO error.",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
