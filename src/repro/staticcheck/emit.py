"""Finding emitters: text, JSON and SARIF 2.1.0.

The JSON form is the machine-readable contract (CI artifact uploads
consume it); SARIF is for code-scanning UIs.  Both carry the full rule
catalog metadata so a report is self-describing.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.staticcheck.findings import Finding, iter_rules

__all__ = ["render_text", "render_json", "render_sarif", "FORMATS"]

FORMATS = ("text", "json", "sarif")

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_TOOL_NAME = "repro-staticcheck"
_TOOL_URI = "https://github.com/"  # populated by docs/staticcheck.md


def _summary_counts(findings: Sequence[Finding]) -> dict:
    return {
        "total": len(findings),
        "active": sum(1 for f in findings if f.active),
        "suppressed": sum(1 for f in findings if f.suppressed),
        "baselined": sum(1 for f in findings if f.baselined),
    }


def render_text(findings: Sequence[Finding], files_checked: int,
                verbose: bool = False) -> str:
    """One line per finding, active findings only unless ``verbose``."""
    lines = [
        finding.render()
        for finding in findings
        if verbose or finding.active
    ]
    counts = _summary_counts(findings)
    summary = (
        f"{files_checked} file(s) checked: {counts['active']} finding(s)"
    )
    extras = []
    if counts["suppressed"]:
        extras.append(f"{counts['suppressed']} suppressed")
    if counts["baselined"]:
        extras.append(f"{counts['baselined']} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    payload = {
        "version": 1,
        "tool": _TOOL_NAME,
        "files_checked": files_checked,
        "summary": _summary_counts(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2)


_LEVELS = {"error": "error", "warning": "warning"}


def render_sarif(findings: Sequence[Finding], files_checked: int) -> str:
    """Findings as a SARIF 2.1.0 log (one run, full rule catalog).

    Suppressed/baselined findings are carried with a populated
    ``suppressions`` array, as the SARIF spec prescribes, so
    code-scanning UIs show them as resolved rather than open.
    """
    rules = [
        {
            "id": rule.id,
            "name": rule.title.replace(" ", "-"),
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
            "help": {"text": rule.fix_hint},
            "defaultConfiguration": {"level": _LEVELS[rule.severity]},
        }
        for rule in iter_rules()
    ]
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule,
            "level": _LEVELS.get(finding.severity, "error"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(finding.line, 1)},
                    }
                }
            ],
        }
        if finding.symbol:
            result["locations"][0]["logicalLocations"] = [
                {"fullyQualifiedName": finding.symbol}
            ]
        if finding.suppressed:
            result["suppressions"] = [{"kind": "inSource"}]
        elif finding.baselined:
            result["suppressions"] = [
                {"kind": "external",
                 "justification": "accepted in the committed baseline"}
            ]
        results.append(result)
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(log, indent=2)
