"""The committed findings baseline.

New rules land *warn-first*: their pre-existing findings are recorded in
a committed baseline file (``.staticcheck-baseline.json`` at the repo
root) and reported as ``baselined`` instead of failing the run.  Fixing
a finding removes it from the code; regenerating the baseline
(``repro-tp lint --write-baseline``) then shrinks the file — the
baseline only ever ratchets down.

Baseline entries deliberately omit line numbers: they match on
``(rule, path, symbol, message)`` so unrelated edits shifting a file do
not invalidate the baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = ".staticcheck-baseline.json"

_VERSION = 1


@dataclass
class Baseline:
    """A set of accepted findings keyed by their stable identity."""

    entries: set[tuple[str, str, str, str]]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=set())

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"baseline {path} is not valid JSON: {exc}")
        if payload.get("version") != _VERSION:
            raise ValueError(
                f"baseline {path} has unsupported version "
                f"{payload.get('version')!r} (expected {_VERSION})"
            )
        entries = set()
        for entry in payload.get("findings", []):
            entries.add((
                str(entry["rule"]), str(entry["path"]),
                str(entry.get("symbol") or ""), str(entry["message"]),
            ))
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: Iterable) -> "Baseline":
        return cls(entries={finding.key() for finding in findings})

    def matches(self, finding) -> bool:
        return finding.key() in self.entries

    def to_dict(self) -> dict:
        findings = [
            {"rule": rule, "path": path, "symbol": symbol or None,
             "message": message}
            for rule, path, symbol, message in sorted(self.entries)
        ]
        return {"version": _VERSION, "findings": findings}

    def write(self, path: Path | str) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")
