"""RL001–RL005: the original invariants, ported scope-aware.

These rules shipped first in ``tools/repro_lint.py``; the port keeps
their ids and intent but queries the symbol table instead of raw AST
spellings — ``Tracer(...)`` only fires when ``Tracer`` actually is an
import (or unshadowed global), a compiled-model base is recognized by
what it was *assigned from* as well as by name, and portfolio workers
are recognized by where they are *submitted*, not only by their
``cancel`` parameter.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.findings import Finding, register_rule

__all__: list[str] = []

#: Attributes that are *always* CompiledModel arrays when written
#: through an attribute access — the names are unique to the compiled
#: standard form.
_ALWAYS_PROTECTED = frozenset({
    "b_ub", "b_eq",
    "ub_data", "ub_indices", "ub_indptr",
    "eq_data", "eq_indices", "eq_indptr",
    "is_integral",
})

#: Attributes shared with other objects (models have ``lb``/``ub``/``c``
#: too); only flagged when the base object plausibly is a compiled model.
_CONTEXT_PROTECTED = frozenset({"lb", "ub", "c"})

#: Base names that mark the object as a compiled standard form.
_COMPILED_NAMES = frozenset({"compiled", "cm", "form"})

#: Calls whose result is a CompiledModel (sibling constructors and the
#: compile entry points) — a name assigned from one of these is a
#: compiled model regardless of what it is called.
_COMPILED_PRODUCERS = frozenset({
    "compile_model", "with_b_ub", "with_b_eq", "truncate_ub_rows",
    "with_extra_ub_rows",
})

#: numpy ndarray methods that mutate in place.
_INPLACE_METHODS = frozenset({"fill", "sort", "partition", "put", "resize"})

#: ILP backend entry points that RL004 keeps out of library code.
_BACKEND_ENTRYPOINTS = frozenset({
    "solve_with_highs", "solve_with_bnb", "solve_with_simplex",
    "branch_and_bound", "solve_compiled",
})

#: Modules whose underscore-prefixed names RL005 keeps private.
_FORMULATION_MODULES = frozenset({
    "repro.core.formulation", "repro.core.families",
})


def _base_is_compiled(ctx, node: ast.expr) -> bool:
    """Does ``node`` (the object whose attribute is written) look like
    a compiled model?  Name/attribute-chain heuristics plus the symbol
    table: a name assigned from ``compile_model(...)`` or a sibling
    constructor is a compiled model whatever it is called."""
    if isinstance(node, ast.Name):
        if node.id in _COMPILED_NAMES:
            return True
        binding = ctx.scopes.resolve(node) if ctx.scopes else None
        if binding is not None and binding.value_call_name() in \
                _COMPILED_PRODUCERS:
            return True
        return False
    if isinstance(node, ast.Attribute):
        return node.attr.endswith("_compiled") or node.attr in _COMPILED_NAMES
    return False


def _protected_attribute(ctx, node: ast.expr) -> str | None:
    if not isinstance(node, ast.Attribute):
        return None
    if node.attr in _ALWAYS_PROTECTED:
        return node.attr
    if node.attr in _CONTEXT_PROTECTED and _base_is_compiled(ctx, node.value):
        return node.attr
    return None


@register_rule(
    "RL001",
    title="no in-place mutation of CompiledModel arrays",
    severity="error",
    rationale=(
        "with_b_ub/with_b_eq/truncate_ub_rows hand out siblings whose "
        "numpy arrays alias the original's (and the template's cached "
        "views), so an in-place write silently corrupts every sibling "
        "and every fingerprint derived from them."
    ),
    fix_hint=(
        "Build a patched sibling with with_b_ub()/with_b_eq(), or copy "
        "the array before mutating."
    ),
)
def _check_rl001(rule, ctx, project) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    attr = _protected_attribute(ctx, target.value)
                    if attr is not None:
                        yield rule.finding(ctx, target, (
                            f"in-place write to CompiledModel array "
                            f"'.{attr}' — arrays alias template/sibling "
                            "views; build a patched sibling with "
                            "with_b_ub()/with_b_eq() instead"
                        ))
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Subscript):
                attr = _protected_attribute(ctx, target.value)
                if attr is not None:
                    yield rule.finding(ctx, target, (
                        f"in-place write to CompiledModel array "
                        f"'.{attr}' — arrays alias template/sibling "
                        "views; build a patched sibling with "
                        "with_b_ub()/with_b_eq() instead"
                    ))
            attr = _protected_attribute(ctx, target)
            if attr is not None:
                yield rule.finding(ctx, node, (
                    f"augmented assignment to CompiledModel array "
                    f"'.{attr}' mutates in place via ndarray.__iadd__ — "
                    "build a patched sibling with with_b_ub()/"
                    "with_b_eq() instead"
                ))
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in _INPLACE_METHODS:
                attr = _protected_attribute(ctx, func.value)
                if attr is not None:
                    yield rule.finding(ctx, node, (
                        f"in-place numpy call '.{attr}.{func.attr}()' "
                        "on a CompiledModel array — arrays alias "
                        "template/sibling views; copy first or build a "
                        "patched sibling"
                    ))


def _worker_marker(ctx, project, funcdef) -> str | None:
    """Why ``funcdef`` counts as a portfolio worker, or ``None``.

    The legacy marker is a parameter literally named ``cancel``; the
    symbol table adds functions passed to ``race_backends`` or
    submitted to the portfolio thread pool — catching workers the old
    heuristic missed.
    """
    args = funcdef.args
    names = [a.arg for a in (*args.posonlyargs, *args.args,
                             *args.kwonlyargs)]
    if "cancel" in names:
        return "parameter 'cancel'"
    if project.worker_kind(ctx, funcdef) == "portfolio":
        return "raced by the portfolio"
    return None


@register_rule(
    "RL002",
    title="no shared-state writes in portfolio workers",
    severity="error",
    rationale=(
        "Portfolio attempt functions race in threads; any write to "
        "self, global or nonlocal state from a worker is a data race "
        "that can corrupt the verdict another backend is producing."
    ),
    fix_hint=(
        "Return results via the worker's SolveAttempt; communicate "
        "only through the cancellation event."
    ),
)
def _check_rl002(rule, ctx, project) -> Iterator[Finding]:
    seen: set[tuple[int, str]] = set()
    for funcdef in ast.walk(ctx.tree):
        if not isinstance(funcdef, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
            continue
        marker = _worker_marker(ctx, project, funcdef)
        if marker is None:
            continue
        for stmt in funcdef.body:
            for node in ast.walk(stmt):
                finding = None
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        if (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            finding = rule.finding(ctx, target, (
                                f"write to 'self.{target.attr}' inside "
                                f"a portfolio attempt ({marker}) — "
                                "workers race in threads; return "
                                "results via SolveAttempt instead"
                            ))
                elif isinstance(node, ast.Global):
                    finding = rule.finding(ctx, node, (
                        f"'global {', '.join(node.names)}' inside a "
                        f"portfolio attempt ({marker}) — workers race "
                        "in threads; return results via SolveAttempt "
                        "instead"
                    ))
                elif isinstance(node, ast.Nonlocal):
                    finding = rule.finding(ctx, node, (
                        f"'nonlocal {', '.join(node.names)}' inside a "
                        f"portfolio attempt ({marker}) — workers race "
                        "in threads; return results via SolveAttempt "
                        "instead"
                    ))
                if finding is not None:
                    key = (finding.line, finding.message)
                    if key not in seen:
                        seen.add(key)
                        yield finding


@register_rule(
    "RL003",
    title="no tracer construction outside composition roots",
    severity="error",
    rationale=(
        "Library code must trace through the run's tracer "
        "(SolverSettings.tracer); constructing a fresh Tracer anywhere "
        "else in src/repro/ forks the span tree."
    ),
    fix_hint=(
        "Thread the run's tracer through SolverSettings.tracer / "
        "as_tracer(); only composition roots (CLI, service entry) may "
        "build one."
    ),
)
def _check_rl003(rule, ctx, project) -> Iterator[Finding]:
    if not ctx.in_library:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = ctx.qualname(node.func)
        if qual is not None and (qual == "Tracer"
                                 or qual.endswith(".Tracer")):
            yield rule.finding(ctx, node, (
                "Tracer constructed in library code — thread the run's "
                "tracer through SolverSettings.tracer / as_tracer() so "
                "the span tree stays whole"
            ))


@register_rule(
    "RL004",
    title="no direct backend calls bypassing the executor",
    severity="error",
    rationale=(
        "Window solves must go through SolveExecutor.solve_window, "
        "which layers the solve cache, the incumbent check, the "
        "primal-first stage and the portfolio race in front of the "
        "backends; a direct backend call skips all of that."
    ),
    fix_hint="Solve through SolveExecutor.solve_window.",
)
def _check_rl004(rule, ctx, project) -> Iterator[Finding]:
    if not ctx.in_solver_client:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = ctx.qualname(node.func)
        if qual is None:
            continue
        name = qual.rsplit(".", 1)[-1]
        if name in _BACKEND_ENTRYPOINTS:
            yield rule.finding(ctx, node, (
                f"direct call to backend entry point '{name}' in "
                "library code — solve through "
                "SolveExecutor.solve_window so the cache, incumbent "
                "check, primal-first stage and portfolio race apply"
            ))


@register_rule(
    "RL005",
    title="no private formulation-builder imports",
    severity="error",
    rationale=(
        "The constraint builders are implementation details of "
        "repro.core.families/formulation; the supported extension "
        "surface is the scenario registry, which is free to reshape "
        "the private builders."
    ),
    fix_hint=(
        "Register a ConstraintFamily/ScenarioSpec or use the public "
        "model builders."
    ),
)
def _check_rl005(rule, ctx, project) -> Iterator[Finding]:
    if ctx.in_formulation:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ImportFrom) or node.level != 0:
            continue
        if node.module not in _FORMULATION_MODULES:
            continue
        for alias in node.names:
            if alias.name.startswith("_"):
                yield rule.finding(ctx, node, (
                    f"import of private name '{alias.name}' from "
                    f"'{node.module}' — builder internals are not an "
                    "extension surface; register a ConstraintFamily/"
                    "ScenarioSpec or use the public builders instead"
                ))
