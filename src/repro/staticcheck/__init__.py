"""``repro.staticcheck`` — the repo's scope-aware static analysis.

The promotion of ``tools/repro_lint.py`` (PR 4) into an importable
subsystem: a per-module symbol-table/scope engine
(:mod:`repro.staticcheck.scopes`), a plugin rule registry
(:func:`register_rule`) carrying each rule's severity, rationale and
fix hint, typed :class:`Finding` results with text/JSON/SARIF emitters,
a committed findings baseline so new rules land warn-first, and the
``repro-tp lint`` CLI.

Rule packs
----------

* **invariants** (RL001–RL005) — the original lint rules, re-matched
  through resolved names instead of raw AST spellings;
* **concurrency** (RL006–RL007) — process-pool workers must be pure
  functions of their payload; async bodies must not block;
* **determinism** (RL008) — fingerprint-affecting modules must not
  read clocks/RNG, depend on set-iteration order, or leave compiled
  arrays unfrozen;
* **scenario contracts** (RL009) — registered constraint-family
  builders must be pure functions of their ``BuildContext``.

Run it::

    repro-tp lint                       # default: src tests benchmarks tools
    repro-tp lint --format sarif -o lint.sarif
    repro-tp lint --list-rules

Catalog and engine design: ``docs/staticcheck.md``.
"""

from repro.staticcheck.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.staticcheck.emit import render_json, render_sarif, render_text
from repro.staticcheck.engine import (
    DEFAULT_PATHS,
    CheckResult,
    FileContext,
    Project,
    check_paths,
    check_sources,
)
from repro.staticcheck.findings import (
    Finding,
    Rule,
    iter_rules,
    register_rule,
    rule,
    rule_ids,
)
from repro.staticcheck.scopes import Binding, ModuleScopes, Scope

# Importing the rule modules registers the rules.
from repro.staticcheck import (  # noqa: F401  (registration side effects)
    rules_concurrency,
    rules_contracts,
    rules_core,
    rules_determinism,
)

__all__ = [
    "Baseline",
    "Binding",
    "CheckResult",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_PATHS",
    "FileContext",
    "Finding",
    "ModuleScopes",
    "Project",
    "Rule",
    "Scope",
    "check_paths",
    "check_sources",
    "iter_rules",
    "register_rule",
    "render_json",
    "render_sarif",
    "render_text",
    "rule",
    "rule_ids",
]
