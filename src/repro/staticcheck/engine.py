"""The analysis engine: file contexts, suppression, orchestration.

One :class:`FileContext` per module carries the parsed tree, the
:class:`~repro.staticcheck.scopes.ModuleScopes` symbol table and the
path classification the rules scope themselves by (library code,
solver-client code, fingerprint-affecting modules, ...).  A
:class:`Project` wraps all contexts of one run and builds the
cross-module *worker index*: functions submitted to a process pool or
raced by the portfolio in module A are checked where they are defined,
even when that is module B (``service/sharding.py`` submits
``repro.service.worker.solve_shard`` — the RL006 checks run against
``worker.py``).

Suppression comments (``# repro-lint: ignore`` /
``# repro-lint: ignore[RL001, RL006]``) attach to the *full line span*
of the statement they appear in: any line of a multi-line statement,
and — for ``def``/``class`` — any decorator or signature line.  A
finding inside that span with a matching rule id is marked
``suppressed`` rather than dropped, so emitters can still show it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.staticcheck.baseline import Baseline
from repro.staticcheck.findings import Finding, Rule, iter_rules

__all__ = [
    "FileContext",
    "Project",
    "CheckResult",
    "check_paths",
    "check_sources",
    "DEFAULT_PATHS",
]

from repro.staticcheck.scopes import ModuleScopes

#: Default lint roots, mirroring ``repro-tp analyze``'s sibling tools.
DEFAULT_PATHS = ("src", "tests", "benchmarks", "tools")

#: Path fragments never linted: bytecode caches and the staticcheck
#: fixture corpus (every offending fixture would otherwise fire on the
#: repo-wide run — they are lint *test vectors*, not code).
EXCLUDED_FRAGMENTS = ("__pycache__", "tests/staticcheck/fixtures")

_SUPPRESS_RE = re.compile(
    r"repro-lint:\s*ignore(?:\[(?P<codes>[A-Z0-9, ]+)\])?"
)

#: Marker for "all rules suppressed on this line".
_ALL = "*"

#: Modules whose output feeds solve fingerprints (RL008 scope): any
#: nondeterminism here silently forks cache keys and golden
#: trajectories.
FINGERPRINT_MODULES = (
    "repro/solve/fingerprint.py",
    "repro/ilp/compile.py",
    "repro/core/formulation.py",
    "repro/core/families.py",
)


def _relative_display(path: Path) -> str:
    """Posix path relative to the cwd when possible (stable reports)."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _repro_rest(display_path: str) -> str | None:
    """The path inside the ``repro`` package, or ``None``.

    ``src/repro/solve/cache.py`` -> ``repro/solve/cache.py``; works for
    both real repo paths and the virtual paths tests hand to
    :func:`check_sources`.
    """
    if "src/repro/" in display_path:
        return "repro/" + display_path.split("src/repro/", 1)[1]
    return None


@dataclass
class FileContext:
    """One parsed module plus everything the rules query about it."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module | None
    scopes: ModuleScopes | None
    syntax_error: SyntaxError | None = None
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.lines = self.source.splitlines()
        rest = _repro_rest(self.display_path)
        #: Dotted module name when the file lives in the package.
        self.module: str | None = (
            rest[:-3].replace("/", ".") if rest and rest.endswith(".py")
            else None
        )
        #: RL003 scope — library code that must thread the run tracer.
        self.in_library = (
            rest is not None
            and not rest.startswith("repro/obs/")
            and not rest.startswith("repro/staticcheck/")
            and rest != "repro/cli.py"
        )
        #: RL004 scope — library code that consumes the solver layers.
        self.in_solver_client = (
            self.in_library
            and not rest.startswith(("repro/ilp/", "repro/solve/"))
            and rest != "repro/core/formulation.py"
        )
        #: RL005 exemption — the formulation stack's own modules.
        self.in_formulation = rest in (
            "repro/core/formulation.py", "repro/core/families.py"
        )
        #: RL008 scope — fingerprint-affecting modules.
        self.in_fingerprint = rest in FINGERPRINT_MODULES

    # -- helpers rules use ----------------------------------------------------

    def symbol_at(self, node: ast.AST) -> str | None:
        """Dotted enclosing-definition name (``Class.method``) of the
        scope ``node`` executes in, ``None`` at module level."""
        if self.scopes is None:
            return None
        scope = self.scopes.scope_at(node)
        parts: list[str] = []
        while scope is not None and scope.parent is not None:
            if scope.kind in ("function", "class"):
                parts.append(scope.name)
            scope = scope.parent
        # A def/class statement itself executes in its *enclosing*
        # scope; name the definition, not just its container.
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            parts.insert(0, node.name)
        return ".".join(reversed(parts)) or None

    def qualname(self, node: ast.expr) -> str | None:
        return self.scopes.qualname(node) if self.scopes else None

    def dotted(self, name: str) -> str | None:
        """``self.module`` + ``.name`` when the module name is known."""
        return f"{self.module}.{name}" if self.module else None


# -- suppression spans ---------------------------------------------------------


def suppressed_lines(tree: ast.Module,
                     lines: Sequence[str]) -> dict[int, set[str]]:
    """Map line number -> rule ids suppressed there (``"*"`` = all).

    A comment suppresses its own physical line, plus — via statement
    spans — every line of the multi-line statement it sits in and, for
    ``def``/``class``, the decorator/signature block.
    """
    per_line: dict[int, set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        codes = match.group("codes")
        per_line[number] = (
            {_ALL} if codes is None
            else {code.strip() for code in codes.split(",") if code.strip()}
        )
    if not per_line:
        return {}

    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        body = getattr(node, "body", None)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if node.decorator_list:
                start = min(d.lineno for d in node.decorator_list)
            end = max(start, node.body[0].lineno - 1)
        elif body and isinstance(body, list) and body \
                and isinstance(body[0], ast.stmt):
            # Other compound statements: the header only (a comment deep
            # inside a loop body must not silence the loop header).
            end = max(start, body[0].lineno - 1)
        else:
            end = node.end_lineno or start
        spans.append((start, end))

    result: dict[int, set[str]] = {
        line: set(codes) for line, codes in per_line.items()
    }
    for start, end in spans:
        span_codes: set[str] = set()
        for line in range(start, end + 1):
            span_codes |= per_line.get(line, set())
        if not span_codes:
            continue
        for line in range(start, end + 1):
            result.setdefault(line, set()).update(span_codes)
    return result


def _is_suppressed(finding: Finding,
                   suppressions: dict[int, set[str]]) -> bool:
    codes = suppressions.get(finding.line)
    return bool(codes) and (_ALL in codes or finding.rule in codes)


# -- the cross-file worker index -----------------------------------------------


class Project:
    """All contexts of one run plus cross-module worker resolution."""

    def __init__(self, files: Iterable[FileContext]) -> None:
        self.files = list(files)
        #: Dotted names of functions submitted to a process pool
        #: anywhere in the run (``repro.service.worker.solve_shard``).
        self.process_worker_targets: set[str] = set()
        #: Dotted names of functions raced by the portfolio /
        #: submitted to the portfolio thread pool.
        self.portfolio_worker_targets: set[str] = set()
        #: Per-file local worker defs: (id(FunctionDef) -> kind).
        self.local_workers: dict[int, str] = {}
        for ctx in self.files:
            if ctx.tree is not None:
                self._index_file(ctx)

    # A receiver "looks like" a process pool when it resolves to a
    # ProcessPoolExecutor construction, or failing resolution, when its
    # name says so — the sharding coordinator receives the service's
    # pool as a parameter literally named ``pool``.
    _POOL_NAME = re.compile(r"(^|_)pool$")

    def _pool_kind(self, ctx: FileContext, receiver: ast.expr) -> str | None:
        scopes = ctx.scopes
        assert scopes is not None
        candidates: list[ast.expr] = []
        name = None
        if isinstance(receiver, ast.Name):
            name = receiver.id
            binding = scopes.resolve(receiver)
            if binding is not None and binding.value is not None:
                candidates.append(binding.value)
        elif isinstance(receiver, ast.Attribute):
            name = receiver.attr
            candidates.extend(scopes.attribute_values.get(receiver.attr, ()))
        for value in candidates:
            if not isinstance(value, ast.Call):
                continue
            callee = value.func
            callee_name = (
                callee.id if isinstance(callee, ast.Name)
                else callee.attr if isinstance(callee, ast.Attribute)
                else None
            )
            if callee_name == "ProcessPoolExecutor":
                return "process"
            if callee_name == "ThreadPoolExecutor":
                prefix = next(
                    (kw.value for kw in value.keywords
                     if kw.arg == "thread_name_prefix"), None
                )
                if (isinstance(prefix, ast.Constant)
                        and isinstance(prefix.value, str)
                        and "portfolio" in prefix.value):
                    return "portfolio"
                return None
        if name is not None and self._POOL_NAME.search(name):
            return "process"
        return None

    def _mark_worker(self, ctx: FileContext, func: ast.expr,
                     kind: str) -> None:
        scopes = ctx.scopes
        assert scopes is not None
        if isinstance(func, ast.Call):
            # functools.partial(fn, ...) and friends: the wrapped
            # callable is the first argument.
            if func.args:
                self._mark_worker(ctx, func.args[0], kind)
            return
        if isinstance(func, ast.Name):
            binding = scopes.resolve(func)
            if binding is None:
                return
            if binding.kind == "def" and binding.node is not None:
                self.local_workers[id(binding.node)] = kind
            elif binding.kind == "import" and binding.qualname:
                target = (self.process_worker_targets if kind == "process"
                          else self.portfolio_worker_targets)
                target.add(binding.qualname)

    def _index_file(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # pool.submit(fn, ...) / pool.map(fn, ...)
            if (isinstance(func, ast.Attribute)
                    and func.attr in ("submit", "map") and node.args):
                kind = self._pool_kind(ctx, func.value)
                if kind == "process":
                    self._mark_worker(ctx, node.args[0], "process")
                elif kind == "portfolio":
                    self._mark_worker(ctx, node.args[0], "portfolio")
            # race_backends([(name, fn), ...]) — every callable
            # referenced in the attempts argument races in a thread.
            qual = ctx.qualname(func)
            callee = qual.rsplit(".", 1)[-1] if qual else None
            if callee == "race_backends" and node.args:
                for name_node in ast.walk(node.args[0]):
                    if isinstance(name_node, ast.Name):
                        self._mark_worker(ctx, name_node, "portfolio")

    # -- queries -------------------------------------------------------------

    def worker_kind(self, ctx: FileContext, funcdef) -> str | None:
        """Is ``funcdef`` (in ``ctx``) a process/portfolio worker?

        Matches functions marked at a local submission site and
        functions whose dotted name was submitted from *another* module
        in this run.
        """
        kind = self.local_workers.get(id(funcdef))
        if kind is not None:
            return kind
        dotted = ctx.dotted(funcdef.name)
        if dotted is not None:
            if dotted in self.process_worker_targets:
                return "process"
            if dotted in self.portfolio_worker_targets:
                return "portfolio"
        return None


# -- orchestration -------------------------------------------------------------


@dataclass
class CheckResult:
    """Everything one run produced."""

    findings: list[Finding]
    files_checked: int

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> list[Finding]:
        return [f for f in self.findings if f.baselined]


def _build_context(path: Path, source: str,
                   display_path: str | None = None) -> FileContext:
    display = display_path or _relative_display(path)
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return FileContext(path=path, display_path=display, source=source,
                           tree=None, scopes=None, syntax_error=exc)
    return FileContext(path=path, display_path=display, source=source,
                       tree=tree, scopes=ModuleScopes(tree))


def _run(contexts: list[FileContext], rules: Iterable[Rule],
         baseline: Baseline | None) -> CheckResult:
    project = Project(contexts)
    rules = list(rules)
    findings: list[Finding] = []
    for ctx in contexts:
        if ctx.syntax_error is not None:
            findings.append(Finding(
                rule="RL000", path=ctx.display_path,
                line=ctx.syntax_error.lineno or 0,
                message=f"syntax error: {ctx.syntax_error.msg}",
            ))
            continue
        suppressions = suppressed_lines(ctx.tree, ctx.lines)
        for rule in rules:
            for finding in rule.check(rule, ctx, project):
                if _is_suppressed(finding, suppressions):
                    finding = finding.with_state(suppressed=True)
                elif baseline is not None and baseline.matches(finding):
                    finding = finding.with_state(baselined=True)
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return CheckResult(findings=findings, files_checked=len(contexts))


def _collect(paths: Iterable[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py" and path.exists():
            files.append(path)
        else:
            raise FileNotFoundError(
                f"not a Python file or directory: {path}"
            )
    kept = []
    for file in files:
        posix = file.as_posix()
        if any(fragment in posix or fragment in "/".join(file.parts)
               for fragment in EXCLUDED_FRAGMENTS):
            continue
        kept.append(file)
    return kept


def check_paths(paths: Iterable[Path | str] | None = None,
                rules: Iterable[str] | None = None,
                baseline: Baseline | None = None) -> CheckResult:
    """Lint files and directories (the CLI's entry point)."""
    targets = [Path(p) for p in (paths or DEFAULT_PATHS)]
    contexts = [
        _build_context(file, file.read_text())
        for file in _collect(targets)
    ]
    return _run(contexts, iter_rules(rules), baseline)


def check_sources(sources: Iterable[tuple[str, str]],
                  rules: Iterable[str] | None = None,
                  baseline: Baseline | None = None) -> CheckResult:
    """Lint in-memory sources under *virtual* paths.

    ``sources`` is ``(display_path, source)`` pairs; the display path
    drives the rules' path scoping exactly as an on-disk path would
    (``src/repro/service/facade.py`` gets library-scope rules), which is
    how the fixture suite and the self-tests lint mutated copies of
    real modules without touching the tree.
    """
    contexts = [
        _build_context(Path(display), source, display_path=display)
        for display, source in sources
    ]
    return _run(contexts, iter_rules(rules), baseline)
