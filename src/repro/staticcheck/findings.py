"""Typed findings and the rule registry.

A :class:`Finding` is one rule violation at one source location; rules
are registered with :func:`register_rule`, which attaches the rule's
catalog metadata (severity, rationale, fix hint) so the emitters and
``docs/staticcheck.md`` share one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator

__all__ = [
    "Finding",
    "Rule",
    "register_rule",
    "rule",
    "iter_rules",
    "rule_ids",
]

#: Severity levels, in increasing order of weight.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding.

    ``suppressed`` marks findings silenced by an inline
    ``# repro-lint: ignore[...]`` comment; ``baselined`` marks findings
    matched by the committed baseline file.  Emitters only *fail* on
    findings with neither flag set (:attr:`active`).
    """

    rule: str
    path: str  #: posix-style path as reported (repo-relative when possible)
    line: int
    message: str
    symbol: str | None = None  #: enclosing function/class, when known
    severity: str = "error"
    suppressed: bool = False
    baselined: bool = False

    @property
    def active(self) -> bool:
        return not (self.suppressed or self.baselined)

    def key(self) -> tuple[str, str, str, str]:
        """Baseline identity: line numbers drift, so the key is the
        rule, the path, the enclosing symbol and the message."""
        return (self.rule, self.path, self.symbol or "", self.message)

    def render(self) -> str:
        location = f"{self.path}:{self.line}"
        state = ""
        if self.suppressed:
            state = " [suppressed]"
        elif self.baselined:
            state = " [baselined]"
        return f"{location}: {self.rule} {self.message}{state}"

    def with_state(self, *, suppressed: bool | None = None,
                   baselined: bool | None = None) -> "Finding":
        updates = {}
        if suppressed is not None:
            updates["suppressed"] = suppressed
        if baselined is not None:
            updates["baselined"] = baselined
        return replace(self, **updates)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "severity": self.severity,
            "message": self.message,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }


@dataclass(frozen=True)
class Rule:
    """One registered rule plus its catalog metadata."""

    id: str
    title: str
    severity: str
    rationale: str
    fix_hint: str
    check: Callable = field(compare=False)

    def finding(self, ctx, node, message: str,
                symbol: str | None = None) -> Finding:
        """Build a finding for ``node`` in ``ctx`` (a FileContext)."""
        if symbol is None:
            symbol = ctx.symbol_at(node)
        return Finding(
            rule=self.id,
            path=ctx.display_path,
            line=getattr(node, "lineno", 0),
            message=message,
            symbol=symbol,
            severity=self.severity,
        )


_REGISTRY: dict[str, Rule] = {}


def register_rule(rule_id: str, *, title: str, severity: str = "error",
                  rationale: str, fix_hint: str):
    """Class/function decorator registering a rule's check callable.

    The callable receives ``(rule, ctx, project)`` — the rule's own
    metadata, the per-file context (source, scopes, path classification)
    and the cross-file project index — and yields :class:`Finding`\\ s.
    """
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")

    def decorator(check: Callable) -> Callable:
        if rule_id in _REGISTRY:
            raise ValueError(f"rule {rule_id!r} is already registered")
        _REGISTRY[rule_id] = Rule(
            id=rule_id, title=title, severity=severity,
            rationale=rationale, fix_hint=fix_hint, check=check,
        )
        return check

    return decorator


def rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


def iter_rules(ids: Iterable[str] | None = None) -> Iterator[Rule]:
    """Registered rules in id order (optionally a subset)."""
    selected = set(ids) if ids is not None else None
    for rule_id in sorted(_REGISTRY):
        if selected is None or rule_id in selected:
            yield _REGISTRY[rule_id]


def rule_ids() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))
