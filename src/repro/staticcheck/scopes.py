"""Per-module symbol tables and lexical scopes.

The rule packs of :mod:`repro.staticcheck.rules` do not match raw AST
spellings — ``time.sleep(...)`` is only a blocking call when ``time``
actually is the stdlib module in that scope, and a function is only a
process-pool worker when the object it is submitted to resolves to a
``ProcessPoolExecutor``.  This module builds the structure those
queries need:

* a :class:`Scope` tree (module / class / function / lambda /
  comprehension) with Python's lexical-lookup semantics — class scopes
  are skipped when resolving from nested functions, ``global`` and
  ``nonlocal`` declarations reroute lookups;
* :class:`Binding` records for every name introduced by an assignment,
  import, parameter, ``def``/``class`` statement or comprehension
  target, carrying the binding site and (for simple assignments) the
  right-hand-side expression so rules can ask *what* a name was bound
  to;
* dotted-name resolution (:meth:`ModuleScopes.qualname`) that folds
  import aliases: with ``from time import sleep as pause``,
  ``pause(...)`` resolves to ``time.sleep``.

Everything is a single pass over the AST; the tree nodes are stamped
with their executing scope so later queries are O(1).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Binding", "Scope", "ModuleScopes"]

#: Node attribute used to stamp each AST node with its executing scope.
_SCOPE_ATTR = "_staticcheck_scope"

#: Expressions considered "mutable literals" when they appear as the
#: right-hand side of a module-level assignment (lists, dicts, sets and
#: their comprehensions/constructor calls).
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "defaultdict",
                                   "deque", "Counter", "OrderedDict"})

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})


@dataclass
class Binding:
    """One name introduced into a scope."""

    name: str
    kind: str  #: ``import`` | ``assign`` | ``param`` | ``def`` | ``class`` | ``comprehension``
    lineno: int
    scope: "Scope"
    #: For imports: the dotted origin (``import numpy as np`` binds
    #: ``np`` with qualname ``numpy``; ``from time import sleep`` binds
    #: ``sleep`` with qualname ``time.sleep``).
    qualname: str | None = None
    #: For simple assignments: the right-hand-side expression.
    value: ast.expr | None = None
    #: The ``def``/``class`` node for function/class bindings.
    node: ast.AST | None = None

    def value_call_name(self) -> str | None:
        """Bare callee name when the binding's RHS is ``Name(...)`` or
        ``x.Name(...)`` — e.g. ``ProcessPoolExecutor`` for
        ``pool = ProcessPoolExecutor(4)``."""
        if not isinstance(self.value, ast.Call):
            return None
        func = self.value.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    @property
    def is_mutable_literal(self) -> bool:
        """Was the name assigned a list/dict/set literal or constructor?"""
        value = self.value
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return True
        return self.value_call_name() in _MUTABLE_CONSTRUCTORS

    @property
    def is_set_valued(self) -> bool:
        """Was the name assigned a set literal/comprehension/call?"""
        if isinstance(self.value, (ast.Set, ast.SetComp)):
            return True
        return self.value_call_name() in _SET_CONSTRUCTORS


class Scope:
    """One lexical scope; a node in the scope tree."""

    __slots__ = ("kind", "node", "parent", "children", "bindings",
                 "global_names", "nonlocal_names", "name")

    def __init__(self, kind: str, node: ast.AST | None,
                 parent: "Scope | None", name: str = "") -> None:
        self.kind = kind  #: module | class | function | lambda | comprehension
        self.node = node
        self.parent = parent
        self.name = name
        self.children: list[Scope] = []
        self.bindings: dict[str, Binding] = {}
        self.global_names: set[str] = set()
        self.nonlocal_names: set[str] = set()
        if parent is not None:
            parent.children.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Scope {self.kind} {self.name!r}>"

    @property
    def module(self) -> "Scope":
        scope = self
        while scope.parent is not None:
            scope = scope.parent
        return scope

    def enclosing_function(self) -> "Scope | None":
        """The nearest enclosing function/lambda scope (not this one)."""
        scope = self.parent
        while scope is not None:
            if scope.kind in ("function", "lambda"):
                return scope
            scope = scope.parent
        return None

    def declare(self, binding: Binding) -> Binding:
        # First binding wins for lookup purposes (imports at the top of
        # the file beat a later local shadow only within that scope's
        # own flow — flow-sensitivity is out of scope for a linter, and
        # keeping the *first* site makes import resolution stable).
        existing = self.bindings.get(binding.name)
        if existing is None:
            self.bindings[binding.name] = binding
            return binding
        return existing

    def lookup(self, name: str) -> Binding | None:
        """Resolve ``name`` from this scope, Python-style.

        Honors ``global``/``nonlocal`` declarations and skips class
        scopes for lookups originating in nested scopes.  Returns
        ``None`` for builtins and genuinely unknown names.
        """
        if name in self.global_names:
            return self.module.bindings.get(name)
        if name in self.nonlocal_names:
            scope = self.enclosing_function()
            while scope is not None:
                if name in scope.bindings:
                    return scope.bindings[name]
                scope = scope.enclosing_function()
            return None
        scope: Scope | None = self
        first = True
        while scope is not None:
            if (first or scope.kind != "class") and name in scope.bindings:
                return scope.bindings[name]
            first = False
            scope = scope.parent
        return None


class ModuleScopes:
    """The scope tree of one parsed module, with resolution helpers."""

    def __init__(self, tree: ast.Module) -> None:
        self.tree = tree
        self.module_scope = Scope("module", tree, None, "<module>")
        #: Class-attribute assignments seen anywhere in the module,
        #: keyed by attribute name: ``self._pool = ProcessPoolExecutor()``
        #: records ``_pool -> [Call(ProcessPoolExecutor)]`` so rules can
        #: resolve ``self._pool.submit(...)`` receivers.
        self.attribute_values: dict[str, list[ast.expr]] = {}
        _ScopeBuilder(self).build()

    # -- queries -------------------------------------------------------------

    def scope_at(self, node: ast.AST) -> Scope:
        """The scope in which ``node`` executes."""
        return getattr(node, _SCOPE_ATTR, self.module_scope)

    def scope_of(self, node: ast.AST) -> Scope | None:
        """The scope a ``def``/``class``/``lambda`` node introduces."""
        for child in self._all_scopes():
            if child.node is node:
                return child
        return None

    def _all_scopes(self) -> Iterator[Scope]:
        stack = [self.module_scope]
        while stack:
            scope = stack.pop()
            yield scope
            stack.extend(scope.children)

    def resolve(self, node: ast.Name) -> Binding | None:
        """The binding a ``Name`` node refers to (``None``: builtin)."""
        return self.scope_at(node).lookup(node.id)

    def qualname(self, node: ast.expr) -> str | None:
        """Dotted name of ``node`` with the leading import resolved.

        ``time.sleep`` -> ``"time.sleep"`` when ``time`` is the module
        import; ``pause`` -> ``"time.sleep"`` under ``from time import
        sleep as pause``; an unbound bare name resolves to itself (the
        builtin reading, e.g. ``open``); locally assigned names resolve
        to ``None`` (their value is not a static module path).
        """
        if isinstance(node, ast.Name):
            binding = self.resolve(node)
            if binding is None:
                return node.id  # builtin / unknown global
            if binding.kind == "import":
                return binding.qualname
            return None
        if isinstance(node, ast.Attribute):
            base = self.qualname(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def function_def(self, name: str, scope: Scope | None = None):
        """The ``FunctionDef`` bound to ``name`` in ``scope`` (module
        scope by default), or ``None``."""
        scope = scope or self.module_scope
        binding = scope.lookup(name)
        if binding is not None and binding.kind == "def":
            return binding.node
        return None


class _ScopeBuilder(ast.NodeVisitor):
    def __init__(self, scopes: ModuleScopes) -> None:
        self.scopes = scopes
        self.current = scopes.module_scope

    def build(self) -> None:
        self.visit(self.scopes.tree)

    # -- plumbing ------------------------------------------------------------

    def visit(self, node: ast.AST) -> None:
        setattr(node, _SCOPE_ATTR, self.current)
        super().visit(node)

    def _in_scope(self, scope: Scope, visit) -> None:
        previous, self.current = self.current, scope
        try:
            visit()
        finally:
            self.current = previous

    def _bind(self, name: str, kind: str, lineno: int,
              qualname: str | None = None, value: ast.expr | None = None,
              node: ast.AST | None = None) -> None:
        target = self.current
        if name in target.global_names:
            target = target.module
        target.declare(Binding(name, kind, lineno, target,
                               qualname=qualname, value=value, node=node))

    def _bind_target(self, target: ast.expr,
                     value: ast.expr | None = None) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, "assign", target.lineno, value=value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value)
        elif isinstance(target, ast.Attribute) and value is not None:
            self.scopes.attribute_values.setdefault(
                target.attr, []
            ).append(value)

    # -- statements that introduce names --------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        setattr(node, _SCOPE_ATTR, self.current)
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            origin = alias.name if alias.asname else alias.name.split(".")[0]
            self._bind(bound, "import", node.lineno, qualname=origin)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        setattr(node, _SCOPE_ATTR, self.current)
        module = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            origin = f"{module}.{alias.name}" if module else alias.name
            self._bind(bound, "import", node.lineno, qualname=origin)

    def visit_Global(self, node: ast.Global) -> None:
        setattr(node, _SCOPE_ATTR, self.current)
        self.current.global_names.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        setattr(node, _SCOPE_ATTR, self.current)
        self.current.nonlocal_names.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        setattr(node, _SCOPE_ATTR, self.current)
        self.visit(node.value)
        for target in node.targets:
            self.visit(target)
            self._bind_target(target, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        setattr(node, _SCOPE_ATTR, self.current)
        if node.value is not None:
            self.visit(node.value)
        self.visit(node.target)
        self._bind_target(node.target, node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        setattr(node, _SCOPE_ATTR, self.current)
        self.visit(node.value)
        self.visit(node.target)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        setattr(node, _SCOPE_ATTR, self.current)
        self.visit(node.value)
        # Close enough to PEP 572: bind in the nearest non-comprehension
        # scope (walrus targets leak out of comprehensions).
        scope = self.current
        while scope.kind == "comprehension" and scope.parent is not None:
            scope = scope.parent
        scope.declare(Binding(node.target.id, "assign", node.lineno, scope,
                              value=node.value))

    def visit_For(self, node: ast.For) -> None:
        self._visit_for(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_for(node)

    def _visit_for(self, node) -> None:
        setattr(node, _SCOPE_ATTR, self.current)
        self.visit(node.iter)
        self.visit(node.target)
        self._bind_target(node.target, None)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node) -> None:
        setattr(node, _SCOPE_ATTR, self.current)
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
                self._bind_target(item.optional_vars, item.context_expr)
        for stmt in node.body:
            self.visit(stmt)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        setattr(node, _SCOPE_ATTR, self.current)
        if node.name:
            self._bind(node.name, "assign", node.lineno)
        self.generic_visit(node)

    # -- scope-introducing nodes ----------------------------------------------

    def _visit_function(self, node, kind: str = "function") -> None:
        setattr(node, _SCOPE_ATTR, self.current)
        self._bind(node.name, "def", node.lineno, node=node)
        for decorator in node.decorator_list:
            self.visit(decorator)
        args = node.args
        for default in [*args.defaults, *[d for d in args.kw_defaults if d]]:
            self.visit(default)
        scope = Scope(kind, node, self.current, node.name)
        param_nodes = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if args.vararg:
            param_nodes.append(args.vararg)
        if args.kwarg:
            param_nodes.append(args.kwarg)
        for param in param_nodes:
            scope.declare(Binding(param.arg, "param", node.lineno, scope))

        def visit_body() -> None:
            for stmt in node.body:
                self.visit(stmt)

        self._in_scope(scope, visit_body)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Lambda(self, node: ast.Lambda) -> None:
        setattr(node, _SCOPE_ATTR, self.current)
        scope = Scope("lambda", node, self.current, "<lambda>")
        args = node.args
        for param in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            scope.declare(Binding(param.arg, "param", node.lineno, scope))
        self._in_scope(scope, lambda: self.visit(node.body))

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        setattr(node, _SCOPE_ATTR, self.current)
        self._bind(node.name, "class", node.lineno, node=node)
        for decorator in node.decorator_list:
            self.visit(decorator)
        for base in [*node.bases, *[kw.value for kw in node.keywords]]:
            self.visit(base)
        scope = Scope("class", node, self.current, node.name)

        def visit_body() -> None:
            for stmt in node.body:
                self.visit(stmt)

        self._in_scope(scope, visit_body)

    def _visit_comprehension(self, node) -> None:
        setattr(node, _SCOPE_ATTR, self.current)
        # The first iterable evaluates in the enclosing scope.
        self.visit(node.generators[0].iter)
        scope = Scope("comprehension", node, self.current, "<comp>")

        def visit_body() -> None:
            for index, comp in enumerate(node.generators):
                self.visit(comp.target)
                self._bind_target(comp.target)
                if index > 0:
                    self.visit(comp.iter)
                for cond in comp.ifs:
                    self.visit(cond)
            if isinstance(node, ast.DictComp):
                self.visit(node.key)
                self.visit(node.value)
            else:
                self.visit(node.elt)

        self._in_scope(scope, visit_body)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension
