"""The determinism rule pack: RL008.

Fingerprint-affecting modules (``solve/fingerprint.py``,
``ilp/compile.py``, ``core/formulation.py``, ``core/families.py``) must
produce bit-identical output for identical inputs: solve-cache keys,
golden trajectories and the cross-process shard merge all assume it.
Three construct classes silently break that promise:

* **wall-clock or RNG reads** — two builds of the same model diverge;
* **set-iteration-order dependence** — ``str`` hashes are randomized
  per process (PYTHONHASHSEED), so iterating a set of task names
  yields different row orders in different processes;
* **unfrozen compiled arrays** — without the ``writeable=False``
  freeze, an accidental in-place write mutates every aliased sibling
  *after* its fingerprint was taken.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.findings import Finding, register_rule
from repro.staticcheck.purity import nondeterministic_call

__all__: list[str] = []

#: Calls whose order-sensitivity matters when applied to a set.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})


def _is_set_expression(ctx, node: ast.expr) -> bool:
    """Is ``node`` statically recognizable as a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        qual = ctx.qualname(node.func)
        if qual in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and ctx.scopes is not None:
        binding = ctx.scopes.resolve(node)
        return binding is not None and binding.is_set_valued
    return False


def _iteration_sites(tree: ast.Module) -> Iterator[tuple[ast.AST, ast.expr]]:
    """(reporting node, iterable expression) for every iteration."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for comp in node.generators:
                yield node, comp.iter
        elif isinstance(node, ast.Call):
            func = node.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if name in _ORDER_SENSITIVE_CALLS and node.args:
                yield node, node.args[0]
            elif (isinstance(func, ast.Attribute) and func.attr == "join"
                    and node.args):
                yield node, node.args[0]


@register_rule(
    "RL008",
    title="fingerprint-affecting modules must be deterministic",
    severity="error",
    rationale=(
        "Solve-cache keys, golden trajectories and the sharded merge "
        "assume compiling the same model twice is bit-identical; "
        "wall-clock/RNG reads, set-iteration order (randomized per "
        "process via str hashing) and unfrozen compiled arrays all "
        "silently fork fingerprints."
    ),
    fix_hint=(
        "Sort before iterating sets, take timestamps outside the "
        "fingerprint path, and freeze compiled arrays with "
        "writeable=False."
    ),
)
def _check_rl008(rule, ctx, project) -> Iterator[Finding]:
    if not ctx.in_fingerprint:
        return
    tree = ctx.tree
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            label = nondeterministic_call(ctx.qualname(node.func))
            if label is not None:
                yield rule.finding(ctx, node, (
                    f"{label} read "
                    f"('{ctx.qualname(node.func)}') in a "
                    "fingerprint-affecting module — identical inputs "
                    "must compile bit-identically; take timestamps/"
                    "randomness outside the fingerprint path"
                ))
    for site, iterable in _iteration_sites(tree):
        if _is_set_expression(ctx, iterable):
            yield rule.finding(ctx, site, (
                "iteration over a set in a fingerprint-affecting "
                "module — str-hash randomization makes the order "
                "differ between processes; wrap it in sorted(...)"
            ))
    # Required freeze: any module defining CompiledModel must freeze
    # its arrays (writeable=False / setflags(write=False)) somewhere —
    # deleting the freeze re-enables silent cross-sibling mutation.
    compiled_class = next(
        (node for node in ast.walk(tree)
         if isinstance(node, ast.ClassDef)
         and node.name == "CompiledModel"),
        None,
    )
    if compiled_class is not None and not _has_freeze(tree):
        yield rule.finding(ctx, compiled_class, (
            "CompiledModel arrays are never frozen in this module — "
            "the writeable=False freeze is what turns aliased-sibling "
            "mutation into an immediate error; restore it (see "
            "_frozen in ilp/compile.py)"
        ), symbol="CompiledModel")


def _has_freeze(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        # array.flags.writeable = False
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and target.attr == "writeable"
                        and isinstance(node.value, ast.Constant)
                        and node.value.value is False):
                    return True
        # array.setflags(write=False)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "setflags":
                for kw in node.keywords:
                    if (kw.arg == "write"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is False):
                        return True
    return False
