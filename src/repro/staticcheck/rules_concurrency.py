"""The concurrency rule pack: RL006 (process-pool workers) and RL007
(blocking calls in async bodies).

Both rules are grounded in the service layer added by PRs 6–8:
``service/sharding.py`` submits ``repro.service.worker.solve_shard`` to
a ``ProcessPoolExecutor`` — the sharded search's determinism argument
only holds while workers are pure functions of their payload — and
``service/facade.py``'s asyncio facade promises the event loop never
blocks on a solve.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.findings import Finding, register_rule
from repro.staticcheck.purity import (
    closure_captures,
    module_state_writes,
    mutable_global_reads,
    walk_own_body,
)

__all__: list[str] = []

#: Calls that block the calling thread, by resolved dotted name.
_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "open",
    "input",
    "socket.create_connection",
    "socket.socket",
    "urllib.request.urlopen",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output",
    "requests.get", "requests.post", "requests.request",
})


@register_rule(
    "RL006",
    title="process-pool workers must not touch shared module state",
    severity="error",
    rationale=(
        "Shard worker functions run in separate processes; module "
        "globals they capture are stale copies and writes to them are "
        "silently lost, so any dependence on them breaks the sharded "
        "search's determinism guarantee (service/sharding.py merges "
        "shard reports assuming workers are pure functions of their "
        "payload and the manager proxies)."
    ),
    fix_hint=(
        "Pass all inputs through the wire payload; communicate results "
        "only via the returned report and the manager proxies."
    ),
)
def _check_rl006(rule, ctx, project) -> Iterator[Finding]:
    for funcdef in ast.walk(ctx.tree):
        if not isinstance(funcdef, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
            continue
        if project.worker_kind(ctx, funcdef) != "process":
            continue
        symbol = ctx.symbol_at(funcdef)
        for node, description in module_state_writes(ctx, funcdef):
            yield rule.finding(ctx, node, (
                f"{description} inside process-pool worker "
                f"'{funcdef.name}' — worker processes see stale "
                "copies and their writes are lost; pass state through "
                "the payload and the returned report"
            ), symbol=symbol)
        for node, description in mutable_global_reads(ctx, funcdef):
            yield rule.finding(ctx, node, (
                f"{description} inside process-pool worker "
                f"'{funcdef.name}' — each worker process gets its own "
                "stale copy; pass the value through the wire payload "
                "instead"
            ), symbol=symbol)
        for node, description in closure_captures(ctx, funcdef):
            yield rule.finding(ctx, node, (
                f"{description} inside process-pool worker "
                f"'{funcdef.name}' — workers must be self-contained "
                "top-level functions; captured state does not cross "
                "the process boundary coherently"
            ), symbol=symbol)


def _submit_result_wait(ctx, node: ast.Call) -> bool:
    """Is ``node`` a ``.result()`` call that waits on a pool future —
    either ``pool.submit(...).result()`` inline or through a name
    assigned from a ``.submit(...)`` call?"""
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "result"):
        return False
    receiver = func.value
    if isinstance(receiver, ast.Call) and isinstance(
            receiver.func, ast.Attribute) and \
            receiver.func.attr == "submit":
        return True
    if isinstance(receiver, ast.Name) and ctx.scopes is not None:
        binding = ctx.scopes.resolve(receiver)
        value = binding.value if binding is not None else None
        if isinstance(value, ast.Call) and isinstance(
                value.func, ast.Attribute) and value.func.attr == "submit":
            return True
    return False


@register_rule(
    "RL007",
    title="no blocking calls inside async bodies",
    severity="error",
    rationale=(
        "The service facade promises the event loop never blocks on a "
        "solve; a time.sleep, sync file/socket IO, or a bare "
        "Future.result() inside an async def stalls every other "
        "in-flight request."
    ),
    fix_hint=(
        "Use await asyncio.sleep()/asyncio.to_thread()/"
        "asyncio.wrap_future() instead of the blocking form."
    ),
)
def _check_rl007(rule, ctx, project) -> Iterator[Finding]:
    if not ctx.in_library:
        return
    for funcdef in ast.walk(ctx.tree):
        if not isinstance(funcdef, ast.AsyncFunctionDef):
            continue
        symbol = ctx.symbol_at(funcdef)
        for node in walk_own_body(funcdef):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualname(node.func)
            if qual in _BLOCKING_CALLS:
                yield rule.finding(ctx, node, (
                    f"blocking call '{qual}' inside async def "
                    f"'{funcdef.name}' — the event loop stalls every "
                    "in-flight request; use the asyncio equivalent "
                    "(asyncio.sleep / asyncio.to_thread)"
                ), symbol=symbol)
            elif _submit_result_wait(ctx, node):
                yield rule.finding(ctx, node, (
                    "blocking Future.result() on a pool submission "
                    f"inside async def '{funcdef.name}' — await "
                    "asyncio.wrap_future(...) instead so the event "
                    "loop keeps serving other requests"
                ), symbol=symbol)
