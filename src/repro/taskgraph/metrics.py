"""Structural metrics of task graphs.

Used by reports and by experimenters picking workloads: a graph's
*width* (peak level parallelism) bounds how much a single configuration
can exploit, the *parallelism profile* shows where partitions will be
forced, and the serialization ratio predicts which reconfiguration
regime the workload cares about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.paths import count_paths, critical_path

__all__ = ["GraphMetrics", "compute_metrics", "parallelism_profile"]


def parallelism_profile(graph: TaskGraph) -> dict[int, int]:
    """Tasks per level (longest-path depth): the width histogram."""
    profile: dict[int, int] = {}
    for level in graph.level_of().values():
        profile[level] = profile.get(level, 0) + 1
    return dict(sorted(profile.items()))


@dataclass(frozen=True)
class GraphMetrics:
    """Summary statistics of one task graph."""

    num_tasks: int
    num_edges: int
    depth: int                      # levels (longest path, in tasks)
    width: int                      # max tasks on one level
    num_paths: int
    density: float                  # edges / possible forward edges
    avg_design_points: float
    serialization_ratio: float      # critical path / total work (min dps)
    total_data_volume: float

    @property
    def is_chainlike(self) -> bool:
        return self.width == 1

    @property
    def is_embarrassingly_parallel(self) -> bool:
        return self.depth == 1 and self.num_tasks > 1


def compute_metrics(graph: TaskGraph) -> GraphMetrics:
    """Compute :class:`GraphMetrics` for ``graph``."""
    if len(graph) == 0:
        raise ValueError("cannot compute metrics of an empty graph")
    profile = parallelism_profile(graph)
    depth = max(profile) + 1
    width = max(profile.values())
    n = len(graph)
    possible = n * (n - 1) / 2
    path_latency, _path = critical_path(
        graph, lambda t: graph.task(t).min_latency
    )
    total_work = sum(task.min_latency for task in graph)
    return GraphMetrics(
        num_tasks=n,
        num_edges=graph.num_edges,
        depth=depth,
        width=width,
        num_paths=count_paths(graph),
        density=graph.num_edges / possible if possible else 0.0,
        avg_design_points=(
            sum(len(task.design_points) for task in graph) / n
        ),
        serialization_ratio=(
            path_latency / total_work if total_work else 0.0
        ),
        total_data_volume=sum(v for _s, _d, v in graph.edges),
    )
