"""Design points and module sets.

A *design point* for a task is one synthesized implementation alternative,
characterized by its area ``R(m)`` and latency ``D(m)`` (paper, Section
3.1).  Each design point carries a *module set* — the multiset of
functional units the implementation instantiates — mirroring the paper's
``m ∈ M_t`` notation.  The temporal partitioner itself only reads
``area``/``latency``; module sets document provenance and connect design
points back to the HLS estimator that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = ["ModuleSet", "DesignPoint", "pareto_filter", "subsample_front"]


@dataclass(frozen=True)
class ModuleSet:
    """A named multiset of functional units, e.g. ``{mult16: 2, add16: 1}``.

    Attributes
    ----------
    counts:
        Mapping from functional-unit name to instance count.
    """

    counts: tuple[tuple[str, int], ...] = ()

    @staticmethod
    def from_mapping(counts: Mapping[str, int]) -> "ModuleSet":
        cleaned = tuple(
            sorted((name, int(n)) for name, n in counts.items() if n > 0)
        )
        return ModuleSet(cleaned)

    def as_dict(self) -> dict[str, int]:
        return dict(self.counts)

    def count(self, unit: str) -> int:
        return self.as_dict().get(unit, 0)

    @property
    def total_units(self) -> int:
        return sum(n for _name, n in self.counts)

    def __str__(self) -> str:
        if not self.counts:
            return "{}"
        inner = ", ".join(f"{name} x{n}" for name, n in self.counts)
        return "{" + inner + "}"


@dataclass(frozen=True)
class DesignPoint:
    """One (area, latency) implementation alternative for a task.

    Attributes
    ----------
    area:
        Primary resource cost ``R(m)`` in device resource units (CLBs /
        function generators in the paper's experiments).
    latency:
        Execution time ``D(m)``; the paper expresses latency in total
        execution time (nanoseconds), not clock cycles.
    module_set:
        Functional units used by the implementation.
    name:
        Optional label (``"dp1"`` etc.) used in reports and traces.
    extra_resources:
        Costs on additional device resource types (e.g. block RAMs,
        dedicated multipliers) as sorted ``(type, amount)`` pairs.  The
        paper notes "similar equations can be added if multiple resource
        types exist in the FPGA"; the formulation adds one capacity row
        per declared type.  Use :meth:`with_resources` to attach them.
    """

    area: float
    latency: float
    module_set: ModuleSet = field(default_factory=ModuleSet)
    name: str = ""
    extra_resources: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.area <= 0:
            raise ValueError(f"design point area must be positive: {self.area}")
        if self.latency <= 0:
            raise ValueError(
                f"design point latency must be positive: {self.latency}"
            )
        for kind, amount in self.extra_resources:
            if amount < 0:
                raise ValueError(
                    f"negative usage of resource {kind!r}: {amount}"
                )

    def with_resources(self, **usage: float) -> "DesignPoint":
        """Copy with extra resource usage, e.g. ``with_resources(bram=2)``."""
        merged = dict(self.extra_resources)
        merged.update(usage)
        return DesignPoint(
            area=self.area,
            latency=self.latency,
            module_set=self.module_set,
            name=self.name,
            extra_resources=tuple(sorted(merged.items())),
        )

    def resource_usage(self, kind: str) -> float:
        """Usage of one extra resource type (0 when undeclared)."""
        return dict(self.extra_resources).get(kind, 0.0)

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance: no worse in both dimensions, better in one."""
        no_worse = self.area <= other.area and self.latency <= other.latency
        better = self.area < other.area or self.latency < other.latency
        return no_worse and better

    def label(self, fallback_index: int | None = None) -> str:
        if self.name:
            return self.name
        if fallback_index is not None:
            return f"dp{fallback_index}"
        return f"(area={self.area:g}, latency={self.latency:g})"

    def __str__(self) -> str:
        tag = f"{self.name}: " if self.name else ""
        return f"{tag}area={self.area:g}, latency={self.latency:g}"


def subsample_front(
    front: list[DesignPoint], max_points: int
) -> list[DesignPoint]:
    """Pick ``max_points`` points spread evenly along a Pareto front.

    ``front`` must be area-sorted (as returned by :func:`pareto_filter`).
    The two extreme points are always kept: the min-area point drives
    ``N_min^l`` and the min-latency point drives ``MinLatency``, so
    dropping either would silently change the partitioner's search space.
    """
    if max_points < 1:
        raise ValueError("max_points must be at least 1")
    if len(front) <= max_points:
        return list(front)
    if max_points == 1:
        return [front[0]]
    picks = sorted(
        {
            round(i * (len(front) - 1) / (max_points - 1))
            for i in range(max_points)
        }
    )
    return [front[i] for i in picks]


def pareto_filter(points: Iterable[DesignPoint]) -> list[DesignPoint]:
    """Return the non-dominated subset, sorted by increasing area.

    Ties on both coordinates keep the first occurrence.  This is the
    "candidate design point" pruning the paper recommends when a task's
    design space is too large (Section 2).
    """
    ordered = sorted(points, key=lambda dp: (dp.area, dp.latency))
    front: list[DesignPoint] = []
    best_latency = float("inf")
    for point in ordered:
        if point.latency < best_latency:
            front.append(point)
            best_latency = point.latency
    return front
