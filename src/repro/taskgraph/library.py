"""The paper's benchmark task graphs: the AR filter and the 4x4 DCT.

Both graphs are rebuilt from the paper's description (Section 4).  Where
the scanned source is corrupted (parts of Table 2 and the AR design-point
table are unreadable), the numbers are *calibrated* so that every derived
quantity the paper reports is reproduced exactly — see DESIGN.md section
"Calibrated DCT numbers" for the arithmetic:

* ``sum(min area) = 4160``  →  ``N_min^l = 8`` at ``R_max = 576`` and
  ``5`` at ``R_max = 1024`` (where Tables 4 and 6/8 start their searches),
* ``sum(max area) = 6336``  →  ``N_min^u = 11``, so the ``gamma = 1``
  searches stop at 12 ("we stop our search at 12"),
* minimum critical-path latency ``375 + 420 = 795 ns`` (Table 4's D_min).
"""

from __future__ import annotations

from repro.taskgraph.designpoint import DesignPoint, ModuleSet
from repro.taskgraph.graph import TaskGraph

__all__ = [
    "ar_filter",
    "dct_4x4",
    "DCT_T1_POINTS",
    "DCT_T2_POINTS",
]


def _dp(area: float, latency: float, units: dict[str, int], name: str) -> DesignPoint:
    return DesignPoint(
        area=area,
        latency=latency,
        module_set=ModuleSet.from_mapping(units),
        name=name,
    )


# -- AR filter ---------------------------------------------------------------

#: Design points per AR-filter task.  Counts follow the paper exactly:
#: T1 has three, T3 and T4 two each, T2/T5/T6 one each.
_AR_POINTS: dict[str, tuple[DesignPoint, ...]] = {
    "T1": (
        _dp(200, 120, {"mult16": 1, "add16": 1}, "dp1"),
        _dp(280, 80, {"mult16": 2, "add16": 1}, "dp2"),
        _dp(360, 60, {"mult16": 2, "add16": 2}, "dp3"),
    ),
    "T2": (_dp(150, 100, {"add16": 2}, "dp1"),),
    "T3": (
        _dp(180, 90, {"mult12": 1, "add12": 1}, "dp1"),
        _dp(260, 60, {"mult12": 2, "add12": 1}, "dp2"),
    ),
    "T4": (
        _dp(180, 90, {"mult12": 1, "add12": 1}, "dp1"),
        _dp(260, 60, {"mult12": 2, "add12": 1}, "dp2"),
    ),
    "T5": (_dp(140, 110, {"add16": 1, "sub16": 1}, "dp1"),),
    "T6": (_dp(120, 70, {"add16": 1}, "dp1"),),
}


def ar_filter() -> TaskGraph:
    """The six-task Auto-Regressive filter graph of Figure 5.

    Tasks ``T1``, ``T3`` and ``T4`` share the paper's "Task A" structure
    (differing bit-widths), giving them multiple design points; the rest
    have a single implementation.  The diamond ``T2 -> {T3, T4} -> T5``
    reproduces the parallel filter sections.
    """
    graph = TaskGraph("ar_filter")
    for name, points in _AR_POINTS.items():
        kind = "A" if name in ("T1", "T3", "T4") else "B"
        graph.add_task(name, points, kind=kind)
    graph.add_edge("T1", "T2", 8)
    graph.add_edge("T2", "T3", 8)
    graph.add_edge("T2", "T4", 8)
    graph.add_edge("T3", "T5", 8)
    graph.add_edge("T4", "T5", 8)
    graph.add_edge("T5", "T6", 8)
    graph.set_env_input("T1", 8)
    graph.set_env_output("T6", 8)
    return graph


# -- 4x4 DCT -----------------------------------------------------------------

#: Stage-1 vector-product design points (task kind ``T1``).
DCT_T1_POINTS: tuple[DesignPoint, ...] = (
    _dp(116, 795, {"mult8": 1, "add8": 1}, "dp1"),
    _dp(150, 510, {"mult8": 2, "add8": 1}, "dp2"),
    _dp(180, 375, {"mult8": 2, "add8": 2}, "dp3"),
)

#: Stage-2 vector-product design points (task kind ``T2``, wider data).
DCT_T2_POINTS: tuple[DesignPoint, ...] = (
    _dp(144, 885, {"mult12": 1, "add12": 1}, "dp1"),
    _dp(190, 570, {"mult12": 2, "add12": 1}, "dp2"),
    _dp(216, 420, {"mult12": 2, "add12": 2}, "dp3"),
)


def dct_4x4(rows: int = 4) -> TaskGraph:
    """The 32-task 4x4 DCT graph of Figure 6.

    The 2-D DCT ``Z = C X C^T`` is modeled as 32 vector products: stage 1
    computes ``Y = C X`` (16 tasks of kind ``T1``), stage 2 computes
    ``Z = Y C^T`` (16 tasks of kind ``T2``).  Row ``r`` of the output
    depends only on row ``r`` of ``Y``, so the graph decomposes into four
    independent *collections* of eight tasks — four ``T1`` producers fully
    connected to four ``T2`` consumers — exactly the paper's "collection of
    eight tasks forms a row of the 4x4 output matrix".

    Every task has three design points (Table 2); each crossing edge
    carries one data unit (one matrix element), each stage-1 task reads
    four elements from the environment, each stage-2 task writes one back.

    ``rows`` keeps only the first ``rows`` of the four independent
    collections (eight tasks each) — a faithful reduced instance with
    the same design points, the same bipartite collection structure and
    the same area pressure per partition, used where the full graph
    would be too expensive (CI smoke benchmarks).
    """
    if not 1 <= rows <= 4:
        raise ValueError("dct_4x4 has between 1 and 4 row collections")
    graph = TaskGraph(
        "dct_4x4" if rows == 4 else f"dct_4x4_rows{rows}"
    )
    for row in range(rows):
        for col in range(4):
            graph.add_task(f"Y{row}{col}", DCT_T1_POINTS, kind="T1")
        for col in range(4):
            graph.add_task(f"Z{row}{col}", DCT_T2_POINTS, kind="T2")
        for producer in range(4):
            for consumer in range(4):
                graph.add_edge(f"Y{row}{producer}", f"Z{row}{consumer}", 1)
    for row in range(rows):
        for col in range(4):
            graph.set_env_input(f"Y{row}{col}", 4)
            graph.set_env_output(f"Z{row}{col}", 1)
    return graph
