"""Chain clustering: a model-size-reducing preprocessing step.

The paper assumes tasks are produced "by clustering or template
extraction techniques" (Section 2).  This module implements the simplest
useful instance — merging *linear chains*: maximal runs ``t1 -> t2 ->
... -> tk`` where every interior vertex has exactly one predecessor and
one successor.  Tasks of a chain always execute back-to-back, so merging
them is **lossless for the partitioning problem whenever the chain ends
up co-located**, and conservative otherwise (a merged chain cannot be
split across partitions, which removes some solutions but never invents
any).

Each merged task's design points are the Pareto front of the component
combinations: serial latency is the sum, area is the sum (components
coexist in one configuration), environment I/O is accumulated, and
in-chain edges disappear (their data never crosses a boundary).

:func:`cluster_chains` returns a :class:`ClusteringResult` that can
*expand* a partitioned design of the clustered graph back onto the
original tasks — every component inherits the cluster's partition and
its own design point from the chosen combination — so the rest of the
toolchain (audit, simulator, reports) keeps operating on the real graph.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.taskgraph.designpoint import (
    DesignPoint,
    ModuleSet,
    pareto_filter,
    subsample_front,
)
from repro.taskgraph.graph import TaskGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.solution import PartitionedDesign

__all__ = ["ClusteringResult", "cluster_chains"]

#: Cap on combinations explored per chain before Pareto pruning.
_COMBO_LIMIT = 256


@dataclass
class ClusteringResult:
    """A clustered graph plus the bookkeeping to undo it."""

    graph: TaskGraph
    #: cluster task name -> ordered tuple of original component names.
    members: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: (cluster name, merged dp label) -> per-component dp labels.
    combination: dict[tuple[str, str], tuple[str, ...]] = field(
        default_factory=dict
    )
    original: TaskGraph | None = None

    @property
    def num_merged(self) -> int:
        """Original tasks absorbed into multi-task clusters."""
        return sum(
            len(components)
            for components in self.members.values()
            if len(components) > 1
        )

    def expand(self, design: "PartitionedDesign") -> "PartitionedDesign":
        """Map a clustered-graph design back onto the original graph."""
        from repro.core.solution import PartitionedDesign, Placement

        if self.original is None:
            raise ValueError("clustering result lost its original graph")
        placements: dict[str, Placement] = {}
        for cluster_name, placement in design.placements.items():
            components = self.members[cluster_name]
            if len(components) == 1:
                placements[components[0]] = placement
                continue
            merged_label = placement.design_point.label()
            component_labels = self.combination[
                (cluster_name, merged_label)
            ]
            for component, label in zip(components, component_labels):
                task = self.original.task(component)
                placements[component] = Placement(
                    placement.partition, task.design_point(label)
                )
        return PartitionedDesign(self.original, placements)


def _chains(graph: TaskGraph) -> list[list[str]]:
    """Maximal linear chains, in topological order of their heads."""
    in_line = {
        name: len(graph.predecessors(name)) == 1
        for name in graph.task_names
    }
    out_line = {
        name: len(graph.successors(name)) == 1
        for name in graph.task_names
    }

    def chain_continues(src: str, dst: str) -> bool:
        return out_line[src] and in_line[dst]

    assigned: set[str] = set()
    chains: list[list[str]] = []
    for name in graph.topological_order():
        if name in assigned:
            continue
        chain = [name]
        assigned.add(name)
        current = name
        while True:
            succs = graph.successors(current)
            if len(succs) != 1:
                break
            nxt = succs[0]
            if nxt in assigned or not chain_continues(current, nxt):
                break
            chain.append(nxt)
            assigned.add(nxt)
            current = nxt
        chains.append(chain)
    return chains


def _merged_points(
    graph: TaskGraph,
    chain: list[str],
    max_points: int,
) -> tuple[tuple[DesignPoint, ...], dict[str, tuple[str, ...]]]:
    """Pareto-pruned design points of a chain + label bookkeeping."""
    per_task = [
        [
            (dp.label(i), dp)
            for i, dp in enumerate(graph.task(t).design_points, start=1)
        ]
        for t in chain
    ]
    combos = list(itertools.islice(
        itertools.product(*per_task), _COMBO_LIMIT
    ))
    # The truncation must never lose the extreme combinations: all-min-area
    # preserves N_min^l, all-min-latency preserves MinLatency bounds.
    min_area_combo = tuple(
        min(choices, key=lambda c: (c[1].area, c[1].latency))
        for choices in per_task
    )
    min_latency_combo = tuple(
        min(choices, key=lambda c: (c[1].latency, c[1].area))
        for choices in per_task
    )
    for extreme in (min_area_combo, min_latency_combo):
        if extreme not in combos:
            combos.append(extreme)
    candidates: list[tuple[DesignPoint, tuple[str, ...]]] = []
    for combo in combos:
        labels = tuple(label for label, _dp in combo)
        points = [dp for _label, dp in combo]
        merged_units: dict[str, int] = {}
        for dp in points:
            for unit, count in dp.module_set.counts:
                merged_units[unit] = merged_units.get(unit, 0) + count
        candidates.append(
            (
                DesignPoint(
                    area=sum(dp.area for dp in points),
                    latency=sum(dp.latency for dp in points),
                    module_set=ModuleSet.from_mapping(merged_units),
                ),
                labels,
            )
        )
    front = pareto_filter(dp for dp, _labels in candidates)
    # Keep both extremes: the fastest combo preserves MinLatency bounds,
    # the smallest preserves N_min^l.
    front = subsample_front(front, max_points)
    labeled: list[DesignPoint] = []
    mapping: dict[str, tuple[str, ...]] = {}
    for index, point in enumerate(front, start=1):
        label = f"dp{index}"
        labeled.append(
            DesignPoint(point.area, point.latency, point.module_set, label)
        )
        # Recover which combination produced this Pareto point.
        for candidate, labels in candidates:
            if (
                candidate.area == point.area
                and candidate.latency == point.latency
            ):
                mapping[label] = labels
                break
    return tuple(labeled), mapping


def cluster_chains(
    graph: TaskGraph, max_points: int = 8
) -> ClusteringResult:
    """Merge maximal linear chains of ``graph`` into single tasks.

    Parameters
    ----------
    graph:
        The original task graph (unmodified).
    max_points:
        Design-point cap per merged task after Pareto pruning.
    """
    clustered = TaskGraph(f"{graph.name}_clustered")
    result = ClusteringResult(
        graph=clustered, original=graph
    )
    cluster_of: dict[str, str] = {}

    for chain in _chains(graph):
        if len(chain) == 1:
            name = chain[0]
            task = graph.task(name)
            clustered.add_task(name, task.design_points, kind=task.kind)
            result.members[name] = (name,)
            cluster_of[name] = name
            continue
        cluster_name = "+".join(chain)
        points, mapping = _merged_points(graph, chain, max_points)
        clustered.add_task(cluster_name, points, kind="cluster")
        result.members[cluster_name] = tuple(chain)
        for label, labels in mapping.items():
            result.combination[(cluster_name, label)] = labels
        for component in chain:
            cluster_of[component] = cluster_name

    for src, dst, volume in graph.edges:
        cluster_src, cluster_dst = cluster_of[src], cluster_of[dst]
        if cluster_src == cluster_dst:
            continue  # in-chain edge: never crosses a boundary
        try:
            existing = clustered.data_volume(cluster_src, cluster_dst)
        except Exception:
            clustered.add_edge(cluster_src, cluster_dst, volume)
        else:
            # Parallel edges between clusters accumulate volume.
            clustered._succ[cluster_src][cluster_dst] = existing + volume
            clustered._pred[cluster_dst][cluster_src] = existing + volume

    env_in: dict[str, float] = {}
    env_out: dict[str, float] = {}
    for name, volume in graph.env_inputs.items():
        env_in[cluster_of[name]] = env_in.get(cluster_of[name], 0.0) + volume
    for name, volume in graph.env_outputs.items():
        env_out[cluster_of[name]] = (
            env_out.get(cluster_of[name], 0.0) + volume
        )
    for name, volume in env_in.items():
        clustered.set_env_input(name, volume)
    for name, volume in env_out.items():
        clustered.set_env_output(name, volume)
    return result
