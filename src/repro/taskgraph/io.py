"""Serialization of task graphs: JSON round-trip and Graphviz DOT export.

The JSON schema is intentionally flat and versioned so that externally
generated workloads (e.g. from a real HLS flow) can be fed to the
partitioner without touching Python::

    {
      "version": 1,
      "name": "my_graph",
      "tasks": [
        {"name": "T1", "kind": "A",
         "design_points": [
            {"name": "dp1", "area": 200, "latency": 120,
             "module_set": {"mult16": 1}}]}
      ],
      "edges": [{"src": "T1", "dst": "T2", "data_units": 8}],
      "env_inputs": {"T1": 8},
      "env_outputs": {"T2": 8}
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.taskgraph.designpoint import DesignPoint, ModuleSet
from repro.taskgraph.graph import GraphValidationError, TaskGraph

__all__ = ["to_dict", "from_dict", "save_json", "load_json", "to_dot"]

_SCHEMA_VERSION = 1


def to_dict(graph: TaskGraph) -> dict[str, Any]:
    """Plain-dict representation of ``graph`` (JSON-serializable)."""
    return {
        "version": _SCHEMA_VERSION,
        "name": graph.name,
        "tasks": [
            {
                "name": task.name,
                "kind": task.kind,
                "design_points": [
                    {
                        "name": dp.label(i),
                        "area": dp.area,
                        "latency": dp.latency,
                        "module_set": dp.module_set.as_dict(),
                        **(
                            {"extra_resources": dict(dp.extra_resources)}
                            if dp.extra_resources
                            else {}
                        ),
                    }
                    for i, dp in enumerate(task.design_points, start=1)
                ],
            }
            for task in graph
        ],
        "edges": [
            {"src": src, "dst": dst, "data_units": volume}
            for src, dst, volume in graph.edges
        ],
        "env_inputs": dict(graph.env_inputs),
        "env_outputs": dict(graph.env_outputs),
    }


def from_dict(payload: dict[str, Any]) -> TaskGraph:
    """Rebuild a :class:`TaskGraph` from :func:`to_dict` output."""
    version = payload.get("version", _SCHEMA_VERSION)
    if version != _SCHEMA_VERSION:
        raise GraphValidationError(
            f"unsupported task-graph schema version {version!r}"
        )
    graph = TaskGraph(payload.get("name", "taskgraph"))
    for entry in payload["tasks"]:
        points = tuple(
            DesignPoint(
                area=dp["area"],
                latency=dp["latency"],
                module_set=ModuleSet.from_mapping(dp.get("module_set", {})),
                name=dp.get("name", ""),
                extra_resources=tuple(
                    sorted(dp.get("extra_resources", {}).items())
                ),
            )
            for dp in entry["design_points"]
        )
        graph.add_task(entry["name"], points, kind=entry.get("kind", ""))
    for edge in payload.get("edges", ()):
        graph.add_edge(edge["src"], edge["dst"], edge.get("data_units", 0.0))
    for name, volume in payload.get("env_inputs", {}).items():
        graph.set_env_input(name, volume)
    for name, volume in payload.get("env_outputs", {}).items():
        graph.set_env_output(name, volume)
    return graph


def save_json(graph: TaskGraph, path: str | Path) -> None:
    Path(path).write_text(json.dumps(to_dict(graph), indent=2))


def load_json(path: str | Path) -> TaskGraph:
    return from_dict(json.loads(Path(path).read_text()))


def to_dot(
    graph: TaskGraph,
    partition_of: dict[str, int] | None = None,
) -> str:
    """Graphviz DOT text for ``graph``.

    When ``partition_of`` is given (task name → 1-based partition number),
    tasks are clustered by temporal partition — the natural way to look at
    a partitioned design.
    """
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;"]
    if partition_of:
        by_partition: dict[int, list[str]] = {}
        for name, partition in partition_of.items():
            by_partition.setdefault(partition, []).append(name)
        for partition in sorted(by_partition):
            lines.append(f"  subgraph cluster_p{partition} {{")
            lines.append(f'    label="partition {partition}";')
            for name in by_partition[partition]:
                task = graph.task(name)
                lines.append(
                    f'    "{name}" [label="{name}\\n{task.kind}"];'
                )
            lines.append("  }")
    else:
        for task in graph:
            points = len(task.design_points)
            lines.append(
                f'  "{task.name}" [label="{task.name}\\n{points} pts"];'
            )
    for src, dst, volume in graph.edges:
        lines.append(f'  "{src}" -> "{dst}" [label="{volume:g}"];')
    lines.append("}")
    return "\n".join(lines)
