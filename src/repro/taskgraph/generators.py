"""Seeded synthetic task-graph generators.

The paper evaluates on two hand-built graphs (AR filter, 4x4 DCT).  For a
usable library — and because the calibration notes for this reproduction
call for synthetic task graphs — this module generates families of DAGs
with controlled shape, plus realistic design-point sets exhibiting the
monotone area-latency trade-off the search exploits:

* :func:`layered_graph` — the classic layered/"LU-style" random DAG used
  in scheduling literature: tasks arranged in levels, edges only between
  consecutive (or skipping) levels,
* :func:`series_parallel_graph` — recursive series/parallel composition,
* :func:`fork_join_graph` — one fork, parallel branches of chains, one join,
* :func:`random_dag` — Erdős–Rényi-style DAG on a random topological order,
* :func:`random_design_points` — Pareto-consistent (area, latency) sets.

Every generator takes an explicit ``seed`` so experiments are exactly
repeatable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.taskgraph.designpoint import DesignPoint, ModuleSet, pareto_filter
from repro.taskgraph.graph import TaskGraph

__all__ = [
    "DesignSpaceSpec",
    "random_design_points",
    "layered_graph",
    "series_parallel_graph",
    "fork_join_graph",
    "random_dag",
]


@dataclass(frozen=True)
class DesignSpaceSpec:
    """Parameters of the synthetic per-task design space.

    The generated points follow the area-time product heuristic: fast
    implementations cost proportionally more area, with multiplicative
    noise.  ``num_points`` alternatives per task, areas within
    ``[min_area, max_area]``.
    """

    num_points: tuple[int, int] = (2, 4)   # inclusive range
    min_area: float = 50.0
    max_area: float = 400.0
    base_latency: float = 100.0
    latency_spread: float = 4.0            # slowest / fastest ratio
    noise: float = 0.15


def random_design_points(
    rng: random.Random, spec: DesignSpaceSpec
) -> tuple[DesignPoint, ...]:
    """Generate a Pareto-consistent set of design points for one task."""
    count = rng.randint(*spec.num_points)
    smallest = rng.uniform(spec.min_area, spec.max_area / spec.latency_spread)
    slowest = spec.base_latency * rng.uniform(1.0, spec.latency_spread)
    points = []
    for index in range(count):
        # Spread areas geometrically from the smallest implementation.
        scale = (spec.latency_spread) ** (index / max(count - 1, 1))
        area = smallest * scale * rng.uniform(1 - spec.noise, 1 + spec.noise)
        latency = (
            slowest / scale * rng.uniform(1 - spec.noise, 1 + spec.noise)
        )
        module_set = ModuleSet.from_mapping(
            {"fu": index + 1}
        )
        points.append(
            DesignPoint(
                area=round(area, 1),
                latency=round(latency, 1),
                module_set=module_set,
                name=f"dp{index + 1}",
            )
        )
    front = pareto_filter(points)
    # Relabel after pruning so labels stay dense and deterministic.
    return tuple(
        DesignPoint(p.area, p.latency, p.module_set, f"dp{i + 1}")
        for i, p in enumerate(front)
    )


def _add_tasks(
    graph: TaskGraph,
    count: int,
    rng: random.Random,
    spec: DesignSpaceSpec,
    prefix: str = "t",
) -> list[str]:
    names = []
    for i in range(count):
        name = f"{prefix}{i}"
        graph.add_task(name, random_design_points(rng, spec))
        names.append(name)
    return names


def _volume(rng: random.Random, max_volume: int) -> float:
    return float(rng.randint(1, max_volume))


def layered_graph(
    num_levels: int,
    tasks_per_level: int,
    seed: int = 0,
    edge_probability: float = 0.5,
    skip_probability: float = 0.1,
    max_volume: int = 16,
    spec: DesignSpaceSpec | None = None,
) -> TaskGraph:
    """A layered DAG: edges go from level ``k`` to ``k+1`` (or skip ahead).

    Every non-source task is guaranteed at least one predecessor in the
    previous level, so no level is vacuously parallel.
    """
    if num_levels < 1 or tasks_per_level < 1:
        raise ValueError("need at least one level and one task per level")
    rng = random.Random(seed)
    spec = spec or DesignSpaceSpec()
    graph = TaskGraph(f"layered_{num_levels}x{tasks_per_level}_s{seed}")
    levels: list[list[str]] = []
    for level in range(num_levels):
        names = []
        for i in range(tasks_per_level):
            name = f"L{level}_{i}"
            graph.add_task(name, random_design_points(rng, spec))
            names.append(name)
        levels.append(names)
    for level in range(1, num_levels):
        for dst in levels[level]:
            anchors = [
                src
                for src in levels[level - 1]
                if rng.random() < edge_probability
            ]
            if not anchors:
                anchors = [rng.choice(levels[level - 1])]
            for src in anchors:
                graph.add_edge(src, dst, _volume(rng, max_volume))
            if level >= 2 and rng.random() < skip_probability:
                src = rng.choice(levels[level - 2])
                graph.add_edge(src, dst, _volume(rng, max_volume))
    for name in graph.sources():
        graph.set_env_input(name, _volume(rng, max_volume))
    for name in graph.sinks():
        graph.set_env_output(name, _volume(rng, max_volume))
    return graph


def fork_join_graph(
    branches: int,
    branch_length: int,
    seed: int = 0,
    max_volume: int = 16,
    spec: DesignSpaceSpec | None = None,
) -> TaskGraph:
    """One fork task, ``branches`` parallel chains, one join task."""
    if branches < 1 or branch_length < 1:
        raise ValueError("need at least one branch of length one")
    rng = random.Random(seed)
    spec = spec or DesignSpaceSpec()
    graph = TaskGraph(f"forkjoin_{branches}x{branch_length}_s{seed}")
    graph.add_task("fork", random_design_points(rng, spec))
    graph.add_task("join", random_design_points(rng, spec))
    for b in range(branches):
        previous = "fork"
        for k in range(branch_length):
            name = f"b{b}_{k}"
            graph.add_task(name, random_design_points(rng, spec))
            graph.add_edge(previous, name, _volume(rng, max_volume))
            previous = name
        graph.add_edge(previous, "join", _volume(rng, max_volume))
    graph.set_env_input("fork", _volume(rng, max_volume))
    graph.set_env_output("join", _volume(rng, max_volume))
    return graph


def series_parallel_graph(
    depth: int,
    seed: int = 0,
    max_volume: int = 16,
    spec: DesignSpaceSpec | None = None,
) -> TaskGraph:
    """Recursive series-parallel DAG of roughly ``2**depth`` tasks."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    rng = random.Random(seed)
    spec = spec or DesignSpaceSpec()
    graph = TaskGraph(f"sp_d{depth}_s{seed}")
    counter = [0]

    def fresh() -> str:
        name = f"sp{counter[0]}"
        counter[0] += 1
        graph.add_task(name, random_design_points(rng, spec))
        return name

    def build(level: int) -> tuple[str, str]:
        """Return (entry, exit) task names of a sub-network."""
        if level == 0:
            single = fresh()
            return single, single
        if rng.random() < 0.5:
            first_in, first_out = build(level - 1)
            second_in, second_out = build(level - 1)
            graph.add_edge(first_out, second_in, _volume(rng, max_volume))
            return first_in, second_out
        head, tail = fresh(), fresh()
        for _ in range(2):
            inner_in, inner_out = build(level - 1)
            graph.add_edge(head, inner_in, _volume(rng, max_volume))
            graph.add_edge(inner_out, tail, _volume(rng, max_volume))
        return head, tail

    entry, exit_ = build(depth)
    graph.set_env_input(entry, _volume(rng, max_volume))
    graph.set_env_output(exit_, _volume(rng, max_volume))
    return graph


def random_dag(
    num_tasks: int,
    seed: int = 0,
    edge_probability: float = 0.2,
    max_volume: int = 16,
    spec: DesignSpaceSpec | None = None,
) -> TaskGraph:
    """Random DAG: edges sampled forward along a shuffled topological order."""
    if num_tasks < 1:
        raise ValueError("need at least one task")
    rng = random.Random(seed)
    spec = spec or DesignSpaceSpec()
    graph = TaskGraph(f"random_{num_tasks}_s{seed}")
    names = _add_tasks(graph, num_tasks, rng, spec)
    order = names[:]
    rng.shuffle(order)
    for i in range(num_tasks):
        for j in range(i + 1, num_tasks):
            if rng.random() < edge_probability:
                graph.add_edge(order[i], order[j], _volume(rng, max_volume))
    for name in graph.sources():
        graph.set_env_input(name, _volume(rng, max_volume))
    for name in graph.sinks():
        graph.set_env_output(name, _volume(rng, max_volume))
    return graph
