"""Structural validation of task graphs before partitioning.

:func:`validate_graph` runs every check and either returns a report or
raises :class:`~repro.taskgraph.graph.GraphValidationError`.  The
partitioner calls this up front so that formulation-time failures carry a
task-level diagnosis rather than an opaque solver error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.taskgraph.designpoint import pareto_filter
from repro.taskgraph.graph import GraphValidationError, TaskGraph

__all__ = ["ValidationReport", "validate_graph"]


@dataclass
class ValidationReport:
    """Result of :func:`validate_graph`.

    ``errors`` make a graph unusable; ``warnings`` flag conditions that are
    legal but usually unintended (dominated design points, tasks that fit
    no device, unreachable fragments).
    """

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self) -> None:
        if self.errors:
            raise GraphValidationError("; ".join(self.errors))


def validate_graph(
    graph: TaskGraph,
    resource_capacity: float | None = None,
    strict: bool = False,
) -> ValidationReport:
    """Check ``graph`` for structural problems.

    Parameters
    ----------
    graph:
        The graph to check.
    resource_capacity:
        When given, tasks whose *smallest* design point exceeds it are
        reported as errors — no temporal partitioning can ever place them.
    strict:
        Promote warnings to errors.
    """
    report = ValidationReport()

    if len(graph) == 0:
        report.errors.append("task graph has no tasks")
        return report

    try:
        graph.topological_order()
    except GraphValidationError as exc:
        report.errors.append(str(exc))
        return report

    for task in graph:
        dominated = len(task.design_points) - len(
            pareto_filter(task.design_points)
        )
        if dominated:
            report.warnings.append(
                f"task {task.name!r}: {dominated} dominated design point(s) "
                "(harmless, but they enlarge the search space for nothing)"
            )
        if resource_capacity is not None and task.min_area > resource_capacity:
            report.errors.append(
                f"task {task.name!r}: smallest design point "
                f"(area {task.min_area:g}) exceeds the device capacity "
                f"{resource_capacity:g}; no temporal partitioning exists"
            )

    # Isolated tasks are legal but usually indicate a modeling slip.
    for task in graph:
        no_neighbors = not graph.predecessors(task.name) and not (
            graph.successors(task.name)
        )
        no_env = (
            graph.env_input(task.name) == 0
            and graph.env_output(task.name) == 0
        )
        if no_neighbors and no_env and len(graph) > 1:
            report.warnings.append(
                f"task {task.name!r} is isolated (no edges, no env I/O)"
            )

    if strict:
        report.errors.extend(report.warnings)
        report.warnings = []
    return report
