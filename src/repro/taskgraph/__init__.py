"""Task graphs: the behavioral input of the temporal partitioner.

Contents:

* :class:`TaskGraph` / :class:`Task` — the DAG with per-edge data volumes
  and per-task design-point sets,
* :class:`DesignPoint` / :class:`ModuleSet` — implementation alternatives,
* path utilities (:mod:`repro.taskgraph.paths`),
* seeded synthetic generators (:mod:`repro.taskgraph.generators`),
* the paper's benchmarks :func:`ar_filter` and :func:`dct_4x4`
  (:mod:`repro.taskgraph.library`),
* JSON/DOT serialization (:mod:`repro.taskgraph.io`) and validation
  (:mod:`repro.taskgraph.validate`).
"""

from repro.taskgraph.clustering import ClusteringResult, cluster_chains
from repro.taskgraph.designpoint import DesignPoint, ModuleSet, pareto_filter
from repro.taskgraph.generators import (
    DesignSpaceSpec,
    fork_join_graph,
    layered_graph,
    random_dag,
    random_design_points,
    series_parallel_graph,
)
from repro.taskgraph.graph import GraphValidationError, Task, TaskGraph
from repro.taskgraph.io import from_dict, load_json, save_json, to_dict, to_dot
from repro.taskgraph.metrics import (
    GraphMetrics,
    compute_metrics,
    parallelism_profile,
)
from repro.taskgraph.library import ar_filter, dct_4x4
from repro.taskgraph.paths import (
    PathLimitExceeded,
    count_paths,
    critical_path,
    enumerate_paths,
    longest_path_latency,
)
from repro.taskgraph.validate import ValidationReport, validate_graph

__all__ = [
    "ClusteringResult",
    "DesignPoint",
    "DesignSpaceSpec",
    "GraphMetrics",
    "GraphValidationError",
    "ModuleSet",
    "PathLimitExceeded",
    "Task",
    "TaskGraph",
    "ValidationReport",
    "ar_filter",
    "cluster_chains",
    "compute_metrics",
    "count_paths",
    "critical_path",
    "dct_4x4",
    "enumerate_paths",
    "fork_join_graph",
    "from_dict",
    "layered_graph",
    "load_json",
    "longest_path_latency",
    "parallelism_profile",
    "pareto_filter",
    "random_dag",
    "random_design_points",
    "save_json",
    "series_parallel_graph",
    "to_dict",
    "to_dot",
    "validate_graph",
]
