"""Tasks and task graphs — the behavioral input of the partitioner.

The paper's input (Section 3) is a directed acyclic *task graph*:

* vertices are tasks, each with a set of pre-synthesized design points,
* edges carry ``B(t_i, t_j)``, the number of data units communicated
  between the tasks (buffered in on-board memory when the edge crosses a
  temporal-partition boundary),
* tasks may additionally read ``B(env, t)`` data units from the host
  environment and write ``B(t, env)`` back.

:class:`TaskGraph` keeps insertion order stable (deterministic model
construction and reports) and validates acyclicity on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.taskgraph.designpoint import DesignPoint

__all__ = ["Task", "TaskGraph", "GraphValidationError"]


class GraphValidationError(ValueError):
    """The task graph is structurally invalid (cycle, dangling edge, ...)."""


@dataclass(frozen=True)
class Task:
    """A vertex of the task graph.

    Attributes
    ----------
    name:
        Unique identifier within the graph.
    design_points:
        Non-empty tuple of implementation alternatives ``M_t``.
    kind:
        Optional template label (the paper's DCT uses kinds ``T1``/``T2``);
        informational only.
    """

    name: str
    design_points: tuple[DesignPoint, ...]
    kind: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphValidationError("task name must be non-empty")
        if not self.design_points:
            raise GraphValidationError(
                f"task {self.name!r} has no design points"
            )

    @property
    def min_area(self) -> float:
        return min(dp.area for dp in self.design_points)

    @property
    def max_area(self) -> float:
        return max(dp.area for dp in self.design_points)

    @property
    def min_latency(self) -> float:
        return min(dp.latency for dp in self.design_points)

    @property
    def max_latency(self) -> float:
        return max(dp.latency for dp in self.design_points)

    def design_point(self, label: str) -> DesignPoint:
        """Look up a design point by its label."""
        for index, dp in enumerate(self.design_points, start=1):
            if dp.label(index) == label:
                return dp
        raise KeyError(f"task {self.name!r} has no design point {label!r}")


class TaskGraph:
    """A DAG of tasks with data volumes on edges and environment I/O."""

    def __init__(self, name: str = "taskgraph") -> None:
        self.name = name
        self._tasks: dict[str, Task] = {}
        self._succ: dict[str, dict[str, float]] = {}
        self._pred: dict[str, dict[str, float]] = {}
        self._env_in: dict[str, float] = {}
        self._env_out: dict[str, float] = {}

    # -- construction -----------------------------------------------------

    def add_task(
        self,
        name: str,
        design_points: Iterable[DesignPoint],
        kind: str = "",
    ) -> Task:
        if name in self._tasks:
            raise GraphValidationError(f"duplicate task name {name!r}")
        task = Task(name, tuple(design_points), kind=kind)
        self._tasks[name] = task
        self._succ[name] = {}
        self._pred[name] = {}
        return task

    def add_edge(self, src: str, dst: str, data_units: float = 0.0) -> None:
        """Add the dependency ``src -> dst`` carrying ``data_units``."""
        self._require(src)
        self._require(dst)
        if src == dst:
            raise GraphValidationError(f"self-loop on task {src!r}")
        if dst in self._succ[src]:
            raise GraphValidationError(f"duplicate edge {src!r} -> {dst!r}")
        if data_units < 0:
            raise GraphValidationError(
                f"negative data volume on edge {src!r} -> {dst!r}"
            )
        self._succ[src][dst] = float(data_units)
        self._pred[dst][src] = float(data_units)

    def set_env_input(self, task: str, data_units: float) -> None:
        """Declare ``B(env, task)`` data units read from the host."""
        self._require(task)
        if data_units < 0:
            raise GraphValidationError("negative environment input volume")
        self._env_in[task] = float(data_units)

    def set_env_output(self, task: str, data_units: float) -> None:
        """Declare ``B(task, env)`` data units written back to the host."""
        self._require(task)
        if data_units < 0:
            raise GraphValidationError("negative environment output volume")
        self._env_out[task] = float(data_units)

    def _require(self, name: str) -> None:
        if name not in self._tasks:
            raise GraphValidationError(f"unknown task {name!r}")

    # -- basic queries ------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    @property
    def task_names(self) -> tuple[str, ...]:
        return tuple(self._tasks)

    @property
    def tasks(self) -> tuple[Task, ...]:
        return tuple(self._tasks.values())

    def task(self, name: str) -> Task:
        self._require(name)
        return self._tasks[name]

    @property
    def edges(self) -> tuple[tuple[str, str, float], ...]:
        return tuple(
            (src, dst, volume)
            for src, targets in self._succ.items()
            for dst, volume in targets.items()
        )

    @property
    def num_edges(self) -> int:
        return sum(len(targets) for targets in self._succ.values())

    def successors(self, name: str) -> tuple[str, ...]:
        self._require(name)
        return tuple(self._succ[name])

    def predecessors(self, name: str) -> tuple[str, ...]:
        self._require(name)
        return tuple(self._pred[name])

    def data_volume(self, src: str, dst: str) -> float:
        """``B(src, dst)`` for an existing edge."""
        self._require(src)
        try:
            return self._succ[src][dst]
        except KeyError:
            raise GraphValidationError(f"no edge {src!r} -> {dst!r}") from None

    def env_input(self, task: str) -> float:
        return self._env_in.get(task, 0.0)

    def env_output(self, task: str) -> float:
        return self._env_out.get(task, 0.0)

    @property
    def env_inputs(self) -> Mapping[str, float]:
        return dict(self._env_in)

    @property
    def env_outputs(self) -> Mapping[str, float]:
        return dict(self._env_out)

    def sources(self) -> tuple[str, ...]:
        """Tasks with no predecessor (the paper's ``T_l``)."""
        return tuple(name for name in self._tasks if not self._pred[name])

    def sinks(self) -> tuple[str, ...]:
        """Tasks with no successor (the paper's ``T_r``)."""
        return tuple(name for name in self._tasks if not self._succ[name])

    # -- structure ------------------------------------------------------------

    def topological_order(self) -> tuple[str, ...]:
        """Kahn's algorithm; raises on cycles.

        Deterministic: among ready tasks, insertion order wins.
        """
        in_degree = {name: len(self._pred[name]) for name in self._tasks}
        ready = [name for name in self._tasks if in_degree[name] == 0]
        order: list[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for succ in self._succ[current]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._tasks):
            cyclic = sorted(n for n, d in in_degree.items() if d > 0)
            raise GraphValidationError(
                f"task graph contains a cycle through {cyclic}"
            )
        return tuple(order)

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
        except GraphValidationError:
            return False
        return True

    def level_of(self) -> dict[str, int]:
        """Longest-path depth (in edges) of each task from the sources."""
        levels: dict[str, int] = {}
        for name in self.topological_order():
            preds = self._pred[name]
            levels[name] = (
                0 if not preds else 1 + max(levels[p] for p in preds)
            )
        return levels

    # -- aggregate figures used by the bounds (Section 3.1) --------------------

    def total_min_area(self) -> float:
        return sum(task.min_area for task in self)

    def total_max_area(self) -> float:
        return sum(task.max_area for task in self)

    def total_max_latency(self) -> float:
        return sum(task.max_latency for task in self)

    def __repr__(self) -> str:
        return (
            f"TaskGraph({self.name!r}, tasks={len(self)}, "
            f"edges={self.num_edges})"
        )
