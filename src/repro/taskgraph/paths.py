"""Path utilities on task graphs.

Two distinct needs of the reproduction meet here:

* the **bounds** of Section 3.1 need the *longest* source-to-sink path
  latency under a per-task design-point choice — computed by dynamic
  programming, no enumeration;
* the **ILP latency constraint** (equation (7)) is stated per explicit
  source-to-sink path, so the formulation needs to enumerate paths.  Path
  counts are exponential in general; :func:`enumerate_paths` therefore
  takes a hard cap and callers either accept the cap or switch to the
  chain-free formulation.  :func:`count_paths` (cheap DP) lets callers
  check before enumerating.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.taskgraph.graph import GraphValidationError, TaskGraph

__all__ = [
    "count_paths",
    "enumerate_paths",
    "longest_path_latency",
    "critical_path",
    "PathLimitExceeded",
]


class PathLimitExceeded(GraphValidationError):
    """Raised when a graph has more source-sink paths than the caller's cap."""


def count_paths(graph: TaskGraph) -> int:
    """Number of source-to-sink paths (isolated tasks count as one path)."""
    counts: dict[str, int] = {}
    total = 0
    for name in reversed(graph.topological_order()):
        succs = graph.successors(name)
        counts[name] = (
            1 if not succs else sum(counts[s] for s in succs)
        )
        if not graph.predecessors(name):
            total += counts[name]
    return total


def enumerate_paths(
    graph: TaskGraph, limit: int = 100_000
) -> list[tuple[str, ...]]:
    """All source-to-sink paths as task-name tuples, in DFS order.

    Raises
    ------
    PathLimitExceeded
        When the graph has more than ``limit`` paths (checked cheaply with
        :func:`count_paths` before any enumeration happens).
    """
    total = count_paths(graph)
    if total > limit:
        raise PathLimitExceeded(
            f"task graph {graph.name!r} has {total} source-sink paths, "
            f"exceeding the limit of {limit}; use the start-time latency "
            "formulation instead (FormulationOptions.latency_mode='levels')"
        )
    paths: list[tuple[str, ...]] = []
    stack: list[str] = []

    def visit(name: str) -> None:
        stack.append(name)
        succs = graph.successors(name)
        if not succs:
            paths.append(tuple(stack))
        else:
            for succ in succs:
                visit(succ)
        stack.pop()

    for source in graph.sources():
        visit(source)
    return paths


def longest_path_latency(
    graph: TaskGraph,
    task_latency: Callable[[str], float],
) -> float:
    """Maximum over source-sink paths of the summed per-task latency.

    ``task_latency`` maps a task name to the latency to use for it — e.g.
    ``lambda t: graph.task(t).min_latency`` gives the paper's
    ``MinLatency`` ingredient (fastest design point everywhere).
    """
    best: dict[str, float] = {}
    overall = 0.0
    for name in graph.topological_order():
        preds = graph.predecessors(name)
        arrival = max((best[p] for p in preds), default=0.0)
        best[name] = arrival + task_latency(name)
        overall = max(overall, best[name])
    return overall


def critical_path(
    graph: TaskGraph,
    task_latency: Callable[[str], float],
) -> tuple[float, tuple[str, ...]]:
    """Longest path and its latency under ``task_latency``.

    Returns ``(latency, path)``; the empty graph yields ``(0.0, ())``.
    """
    best: dict[str, float] = {}
    choice: dict[str, str | None] = {}
    for name in graph.topological_order():
        preds = graph.predecessors(name)
        if preds:
            prev = max(preds, key=lambda p: best[p])
            best[name] = best[prev] + task_latency(name)
            choice[name] = prev
        else:
            best[name] = task_latency(name)
            choice[name] = None
    if not best:
        return 0.0, ()
    end = max(best, key=lambda n: best[n])
    path: list[str] = []
    cursor: str | None = end
    while cursor is not None:
        path.append(cursor)
        cursor = choice[cursor]
    return best[end], tuple(reversed(path))


def restrict_path_latency(
    path: Sequence[str],
    member_latency: Callable[[str], float | None],
) -> float:
    """Sum ``member_latency`` over a path, skipping ``None`` entries.

    Used when replaying a partitioned design: the latency a path
    contributes to partition ``p`` is the sum over its tasks placed in
    ``p`` (a contiguous subpath, by the temporal-order constraint).
    """
    total = 0.0
    for name in path:
        value = member_latency(name)
        if value is not None:
            total += value
    return total


def transitive_predecessors(graph: TaskGraph) -> dict[str, frozenset[str]]:
    """Map each task to the set of all its ancestors."""
    ancestors: dict[str, set[str]] = {}
    for name in graph.topological_order():
        acc: set[str] = set()
        for pred in graph.predecessors(name):
            acc.add(pred)
            acc |= ancestors[pred]
        ancestors[name] = acc
    return {name: frozenset(block) for name, block in ancestors.items()}
