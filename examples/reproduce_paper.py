#!/usr/bin/env python3
"""Reproduce the paper's full evaluation section in one run.

Regenerates Tables 1-8 and the Figure 3/4 worked examples, printing each
in the paper's format.  Budgets are configurable; with the defaults the
whole run takes roughly 10-20 minutes (the DCT sweeps dominate).

Run with::

    python examples/reproduce_paper.py                 # everything
    python examples/reproduce_paper.py --tables 1 2 4  # a subset
    python examples/reproduce_paper.py --budget 120 --solve-limit 10
"""

import argparse
import time

from repro.core import SolverSettings
from repro.experiments import (
    DCT_EXPERIMENTS,
    figure3_memory_model,
    figure4_partition_latency,
    table1_ar_filter,
    table2_design_points,
)

def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tables", type=int, nargs="*", default=list(range(1, 9)),
        choices=range(1, 9),
        help="which tables to regenerate (default: all)",
    )
    parser.add_argument("--budget", type=float, default=240.0,
                        help="wall-clock budget per DCT experiment (s)")
    parser.add_argument("--solve-limit", type=float, default=12.0,
                        help="time limit per ILP solve (s)")
    parser.add_argument("--skip-figures", action="store_true")
    args = parser.parse_args()

    settings = SolverSettings(time_limit=args.solve_limit)
    started = time.perf_counter()

    for number in args.tables:
        if number == 1:
            result = table1_ar_filter(settings=settings)
            print(result.table.render())
        elif number == 2:
            print(table2_design_points().render())
        else:
            experiment = DCT_EXPERIMENTS[number](
                settings=settings, time_budget=args.budget
            )
            print(experiment.table().render())
        print()

    if not args.skip_figures:
        fig3 = figure3_memory_model()
        print(fig3.table.render())
        print(f"ILP w-variables consistent with analytic crossings: "
              f"{fig3.consistent}")
        print()
        fig4 = figure4_partition_latency()
        print(fig4.table.render())
        print()

    elapsed = time.perf_counter() - started
    print(f"reproduction run finished in {elapsed / 60:.1f} minutes")

if __name__ == "__main__":
    main()
