#!/usr/bin/env python3
"""The DCT case study (paper, Tables 3-8), selectable from the command line.

Run with::

    python examples/dct_case_study.py            # Table 5 (fast-ish default)
    python examples/dct_case_study.py 4          # any of tables 3..8
    python examples/dct_case_study.py 3 --budget 120

Each experiment sweeps the partition count per the paper's
``Refine_Partitions_Bound`` and prints the iteration trace in the paper's
table format (latency bounds shown without the ``N x C_T`` overhead).
"""

import argparse

from repro.core import SolverSettings
from repro.experiments import DCT_EXPERIMENTS

def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "table",
        type=int,
        nargs="?",
        default=5,
        choices=sorted(DCT_EXPERIMENTS),
        help="paper table number to regenerate (3-8)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=300.0,
        help="overall wall-clock budget in seconds",
    )
    parser.add_argument(
        "--solve-limit",
        type=float,
        default=20.0,
        help="time limit per ILP solve in seconds",
    )
    parser.add_argument(
        "--backend",
        default="highs",
        choices=("highs", "bnb"),
        help="ILP backend (highs = scipy/HiGHS, bnb = from-scratch B&B)",
    )
    args = parser.parse_args()

    experiment = DCT_EXPERIMENTS[args.table]
    result = experiment(
        settings=SolverSettings(
            backend=args.backend, time_limit=args.solve_limit
        ),
        time_budget=args.budget,
    )
    print(result.table().render())
    if result.result.design is not None:
        print()
        print(result.result.design.summary(result.experiment.processor()))

if __name__ == "__main__":
    main()
