#!/usr/bin/env python3
"""End-to-end flow: behavioral DFGs -> HLS estimation -> partitioning.

This mirrors how the paper's SPARCS environment is meant to be used: you
do not hand-write design points — a high-level-synthesis estimator
derives them from each task's operations.  Here we build a small
JPEG-encoder-like pipeline (color transform, row/column DCT stages, and
quantization), estimate every task with the bundled HLS estimator, and
partition the result.

Run with::

    python examples/hls_flow.py
"""

from repro import (
    PartitionerConfig,
    PartitionRequest,
    RefinementConfig,
    SolverSettings,
    TemporalPartitioner,
)
from repro.arch import time_multiplexed
from repro.hls import (
    EstimatorConfig,
    estimate_task,
    filter_section_dfg,
    fir_dfg,
    vector_product_dfg,
)
from repro.taskgraph import TaskGraph

def build_pipeline() -> TaskGraph:
    graph = TaskGraph("jpeg_like_pipeline")
    config = EstimatorConfig(max_points=4)

    # Color transform: three weighted sums (vector products) per pixel block.
    for channel in ("yy", "cb", "cr"):
        estimate_task(
            graph,
            f"ct_{channel}",
            vector_product_dfg(length=3, data_width=8, accum_width=10),
            kind="color",
            config=config,
        )

    # Row DCT stage: four vector products consuming all color channels.
    for row in range(4):
        estimate_task(
            graph,
            f"dct_row{row}",
            vector_product_dfg(length=4, data_width=8, accum_width=12),
            kind="dct_row",
            config=config,
        )
        for channel in ("yy", "cb", "cr"):
            graph.add_edge(f"ct_{channel}", f"dct_row{row}", 4)

    # Column DCT stage.
    for col in range(4):
        estimate_task(
            graph,
            f"dct_col{col}",
            vector_product_dfg(length=4, data_width=12, accum_width=16),
            kind="dct_col",
            config=config,
        )
        for row in range(4):
            graph.add_edge(f"dct_row{row}", f"dct_col{col}", 1)

    # Quantization: a filter-section-like divide-and-round per column,
    # then an entropy pre-pass modeled as a FIR accumulation.
    for col in range(4):
        estimate_task(
            graph,
            f"quant{col}",
            filter_section_dfg(taps=2, data_width=12),
            kind="quant",
            config=config,
        )
        graph.add_edge(f"dct_col{col}", f"quant{col}", 4)
    estimate_task(
        graph, "entropy", fir_dfg(taps=4, data_width=12), kind="entropy",
        config=config,
    )
    for col in range(4):
        graph.add_edge(f"quant{col}", "entropy", 4)

    for channel in ("yy", "cb", "cr"):
        graph.set_env_input(f"ct_{channel}", 16)
    graph.set_env_output("entropy", 16)
    return graph

def main() -> None:
    graph = build_pipeline()
    print(f"pipeline: {len(graph)} tasks, {graph.num_edges} edges")
    for task in graph:
        points = ", ".join(str(dp) for dp in task.design_points)
        print(f"  {task.name:<10} [{task.kind:<8}] {points}")

    processor = time_multiplexed(resource_capacity=700, memory_capacity=512)
    partitioner = TemporalPartitioner(
        processor,
        PartitionerConfig(
            search=RefinementConfig(gamma=1, delta_fraction=0.05,
                                    time_budget=120.0),
            solver=SolverSettings(time_limit=15.0),
        ),
    )
    outcome = partitioner.solve(PartitionRequest(graph=graph))
    print()
    if outcome.feasible:
        print(outcome.design.summary(processor))
    else:
        print("no feasible partitioning under these constraints")

if __name__ == "__main__":
    main()
