#!/usr/bin/env python3
"""Diagnosing infeasible partitioning problems.

A partitioning request can fail for very different reasons — too little
area per configuration, a memory budget that cannot hold the crossing
data, a latency window below physics, or pure packing fragmentation.
``repro.core.diagnose_infeasibility`` tells them apart by relaxation
probing.  This example walks through all four.

Run with::

    python examples/diagnose_infeasible.py
"""

from repro.arch import ReconfigurableProcessor
from repro.core import build_model, diagnose_infeasibility
from repro.core.bounds import max_latency
from repro.taskgraph import DesignPoint, TaskGraph

def show(title, graph, processor, partitions, d_max):
    tp = build_model(graph, processor, partitions, d_max)
    solution = tp.solve(backend="highs", first_feasible=True, time_limit=20)
    print(f"--- {title}")
    print(f"    N={partitions}, R_max={processor.resource_capacity:g}, "
          f"M_max={processor.memory_capacity:g}, d_max={d_max:g}")
    if solution.status.has_solution:
        design = tp.design_from(solution)
        print(f"    feasible: latency {design.total_latency(processor):,.0f} ns\n")
        return
    report = diagnose_infeasibility(tp)
    print(f"    infeasible -> {report.message}")
    for family, restored in sorted(report.detail.items()):
        print(f"      {family:<16}{'CULPRIT' if restored else 'ok'}")
    print()

def chain(area, volume=5, env_in=0.0):
    graph = TaskGraph("chain")
    graph.add_task("a", (DesignPoint(area, 100, name="dp1"),))
    graph.add_task("b", (DesignPoint(area, 100, name="dp1"),))
    graph.add_edge("a", "b", volume)
    if env_in:
        graph.set_env_input("a", env_in)
    return graph

def main() -> None:
    # 1. Area: two 300-unit tasks on a 400-unit device, one partition.
    show("not enough area in one configuration",
         chain(300), ReconfigurableProcessor(400, 1000, 10), 1, 1e9)

    # 2. Latency: the window is below the 210 ns minimum.
    show("latency window below the critical path",
         chain(100), ReconfigurableProcessor(400, 1000, 10), 1, 50.0)

    # 3. Memory: host input alone exceeds M_max.
    show("environment data exceeds on-board memory",
         chain(100, env_in=500),
         ReconfigurableProcessor(400, 50, 10), 2,
         max_latency(chain(100, env_in=500), 2, 10))

    # 4. Fragmentation: three 200-unit tasks, two 390-unit partitions.
    graph = TaskGraph("frag")
    prev = None
    for i in range(3):
        graph.add_task(f"t{i}", (DesignPoint(200, 10, name="dp1"),))
        if prev:
            graph.add_edge(prev, f"t{i}", 1)
        prev = f"t{i}"
    show("packing fragmentation (LP feasible, ILP not)",
         graph, ReconfigurableProcessor(390, 1000, 10), 2,
         max_latency(graph, 2, 10))

if __name__ == "__main__":
    main()
