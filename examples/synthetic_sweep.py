#!/usr/bin/env python3
"""Reconfiguration-overhead crossover study on synthetic task graphs.

The paper's central area-latency observation (Section 2): with a *large*
reconfiguration time, the fewest-partitions solution wins; with a *small*
one, spending extra partitions on larger/faster design points can reduce
overall latency.  This example sweeps ``C_T`` over several orders of
magnitude on a synthetic layered graph and reports where the optimizer's
chosen partition count crosses over — with the greedy min-area packing as
the fixed-partitioning baseline.

Run with::

    python examples/synthetic_sweep.py
"""

from repro.arch import ReconfigurableProcessor
from repro.core import RefinementConfig, SolverSettings
from repro.experiments import reconfiguration_sweep, sweep_table
from repro.taskgraph import layered_graph

def main() -> None:
    graph = layered_graph(
        num_levels=4, tasks_per_level=3, seed=7, edge_probability=0.6
    )
    print(f"workload: {graph.name} ({len(graph)} tasks, {graph.num_edges} edges)")

    base = ReconfigurableProcessor(
        resource_capacity=900, memory_capacity=512,
        reconfiguration_time=0.0, name="sweep_base",
    )
    points = reconfiguration_sweep(
        graph,
        base,
        (0.0, 10.0, 100.0, 1_000.0, 100_000.0),
        config=RefinementConfig(gamma=1, delta_fraction=0.03,
                                time_budget=60.0),
        settings=SolverSettings(time_limit=10.0),
    )
    print(
        sweep_table(
            points,
            "Partition count and latency vs reconfiguration overhead",
        ).render()
    )
    print(
        "\nExpected shape: as C_T grows, the ILP collapses to fewer "
        "partitions;\nat tiny C_T it spends partitions to buy faster "
        "design points."
    )

if __name__ == "__main__":
    main()
