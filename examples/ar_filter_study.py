#!/usr/bin/env python3
"""The AR-filter case study (paper, Table 1): iterative vs optimal vs greedy.

The auto-regressive filter graph is small enough to solve to proven
optimality, which lets us validate the iterative procedure the way the
paper does: the near-optimal constraint-satisfaction search should land
on the same latency as the exact ILP.

Run with::

    python examples/ar_filter_study.py
"""

from repro.core import greedy_partition, solve_optimal
from repro.experiments import ar_processor, table1_ar_filter
from repro.taskgraph import ar_filter

def main() -> None:
    result = table1_ar_filter()
    print(result.table.render())
    print()

    graph = ar_filter()
    processor = ar_processor()

    print("Baselines (greedy list packing):")
    for policy in ("min_area", "balanced", "min_latency"):
        greedy = greedy_partition(graph, processor, policy)
        design = greedy.design
        marker = "" if greedy.memory_feasible else "  [memory infeasible]"
        print(
            f"  {policy:<12} N={design.num_partitions_used} "
            f"latency={design.total_latency(processor):,.0f} ns{marker}"
        )

    optimal = solve_optimal(graph, processor)
    print()
    print(
        f"Optimal over N in [{optimal.attempts[0].num_partitions}, "
        f"{optimal.attempts[-1].num_partitions}]: "
        f"{optimal.latency:,.0f} ns "
        f"(proven: {optimal.proven_optimal})"
    )
    gap = result.iterative_latency - optimal.latency
    print(f"Iterative procedure gap to optimal: {gap:,.0f} ns")

if __name__ == "__main__":
    main()
