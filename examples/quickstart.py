#!/usr/bin/env python3
"""Quickstart: temporally partition the paper's 4x4 DCT in a few lines.

Run with::

    python examples/quickstart.py

The DCT (32 vector-product tasks, 3 design points each) is partitioned
for a time-multiplexed FPGA with 576 resource units.  The combined search
picks, per task, both a temporal partition and a design point, minimizing
the overall latency including reconfiguration overhead.
"""

from repro import (
    PartitionerConfig,
    PartitionRequest,
    RefinementConfig,
    SolverSettings,
    TemporalPartitioner,
)
from repro.arch import simulate, time_multiplexed
from repro.taskgraph import dct_4x4

def main() -> None:
    graph = dct_4x4()
    processor = time_multiplexed(resource_capacity=576)

    partitioner = TemporalPartitioner(
        processor,
        PartitionerConfig(
            # The paper's parameters: latency tolerance delta, and the
            # partition-space relaxations alpha/gamma.
            search=RefinementConfig(alpha=0, gamma=1, delta=200.0,
                                    time_budget=120.0),
            solver=SolverSettings(backend="highs", time_limit=20.0),
        ),
    )
    outcome = partitioner.solve(PartitionRequest(graph=graph))

    if not outcome.feasible:
        print("no feasible temporal partitioning found")
        return

    design = outcome.design
    print(design.summary(processor))
    print()
    print(f"explored partition counts : {outcome.trace.partition_counts()}")
    print(f"ILP solves                : {outcome.trace.total_solves}")
    print(f"latency tolerance (delta) : {outcome.delta:g} ns")
    print(f"total latency             : {outcome.total_latency:,.0f} ns")
    print()

    # Independently replay the design on an execution-timeline simulator.
    report = simulate(design, processor)
    assert abs(report.makespan - outcome.total_latency) < 1e-6
    print("execution timeline (= reconfigure, # compute):")
    print(report.gantt(width=60))

if __name__ == "__main__":
    main()
