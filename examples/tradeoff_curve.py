#!/usr/bin/env python3
"""Map the partition-count/latency trade-off curve for the DCT.

Section 2 of the paper argues that extra temporal partitions are "area
over time": with a small reconfiguration overhead they can buy faster
design points, with a large one they just cost latency.  This example
computes the *whole curve* for the 4x4 DCT at both overhead regimes (the
single best point of each curve is what Tables 3-8 report), then prints
the LP shadow prices showing which partition's area budget binds.

Run with::

    python examples/tradeoff_curve.py [--quick]
"""

import argparse

from repro.arch import ReconfigurableProcessor
from repro.core import (
    FormulationOptions,
    SolverSettings,
    bounds,
    build_model,
    capacity_shadow_prices,
    partition_latency_curve,
)
from repro.taskgraph import dct_4x4

def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer partition counts, shorter solves")
    parser.add_argument("--solve-limit", type=float, default=15.0)
    args = parser.parse_args()

    graph = dct_4x4()
    counts = [5, 6, 7] if args.quick else [5, 6, 7, 8, 9]
    settings = SolverSettings(time_limit=args.solve_limit)
    options = FormulationOptions(symmetry_breaking=True)

    for c_t, label in ((30.0, "time-multiplexed (C_T = 30 ns)"),
                       (10e6, "WILDFORCE-like (C_T = 10 ms)")):
        processor = ReconfigurableProcessor(1024, 2048, c_t)
        curve = partition_latency_curve(
            graph, processor,
            partition_counts=counts,
            delta=400.0,
            options=options,
            settings=settings,
        )
        print(curve.table(f"DCT trade-off curve, {label}").render())
        print()

    # Where does the area budget bind?  Shadow prices at N = 5.
    processor = ReconfigurableProcessor(1024, 2048, 30.0)
    tp = build_model(
        graph, processor, 5,
        bounds.max_latency(graph, 5, 30.0),
        options=FormulationOptions(symmetry_breaking=True,
                                   minimize_latency=True),
    )
    report = capacity_shadow_prices(tp)
    if report is not None:
        print(report.table().render())

if __name__ == "__main__":
    main()
