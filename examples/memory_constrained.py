#!/usr/bin/env python3
"""When on-board memory is the binding constraint.

Unlike classic resource-constrained scheduling, the paper's formulation
carries an explicit memory constraint: every value crossing a temporal
partition boundary occupies on-board memory until consumed.  This example
builds a fork-join graph with heavy inter-task traffic and shrinks
``M_max`` until partitioning must *co-locate* communicating tasks, then
until the problem becomes infeasible.

Run with::

    python examples/memory_constrained.py
"""

from repro import (
    PartitionerConfig,
    PartitionRequest,
    RefinementConfig,
    SolverSettings,
    TemporalPartitioner,
)
from repro.arch import ReconfigurableProcessor
from repro.experiments import TextTable
from repro.taskgraph import fork_join_graph

def main() -> None:
    graph = fork_join_graph(branches=3, branch_length=2, seed=3, max_volume=40)
    print(f"workload: {graph.name} ({len(graph)} tasks, {graph.num_edges} edges)")
    traffic = sum(volume for _s, _d, volume in graph.edges)
    print(f"total inter-task traffic: {traffic:g} units\n")

    table = TextTable(
        title="Effect of the memory budget M_max",
        columns=("M_max", "feasible", "N", "latency (ns)", "peak memory"),
    )
    for m_max in (4096, 256, 128, 64, 32, 8):
        processor = ReconfigurableProcessor(
            resource_capacity=600,
            memory_capacity=m_max,
            reconfiguration_time=50.0,
            name=f"m{m_max}",
        )
        partitioner = TemporalPartitioner(
            processor,
            PartitionerConfig(
                search=RefinementConfig(gamma=2, delta_fraction=0.05,
                                        time_budget=60.0,
                                        infeasible_escalation_limit=6),
                solver=SolverSettings(time_limit=10.0),
            ),
        )
        outcome = partitioner.solve(PartitionRequest(graph=graph))
        if outcome.feasible:
            table.add_row(
                m_max,
                True,
                outcome.num_partitions,
                outcome.total_latency,
                outcome.design.peak_memory(),
            )
        else:
            table.add_row(m_max, False, None, None, None)
    print(table.render())
    print(
        "\nAs M_max shrinks the partitioner co-locates communicating "
        "tasks (peak memory\ntracks the budget) until no partitioning "
        "fits and the search reports infeasible."
    )

if __name__ == "__main__":
    main()
